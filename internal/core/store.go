package core

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"hybridtree/internal/obs"
	"hybridtree/internal/pagefile"
)

// The store is the heart of the tree's MVCC scheme. Every page has a chain
// of immutable node versions, newest first, each stamped with the commit
// epoch at which it became current; a reader resolves a page by walking the
// chain to the first version no newer than its snapshot epoch. Writers
// never mutate a published node: a mutation clones each touched node into a
// private dirty set and, at commit, links the clones into the chains at the
// next epoch with one atomic store per page. Readers therefore need zero
// lock acquisitions — a search is atomic loads all the way down — and an
// in-flight search keeps observing the exact tree it started on no matter
// how many commits land meanwhile.
//
// Reclamation is epoch-based: superseding a version retires it at the
// commit's epoch, and a retired version is freed once every pinned reader's
// epoch has advanced past that commit (see pin for the ordering argument).

// nodeVersion is one immutable version of a page's decoded node. n == nil
// marks a tombstone: the page was freed at .epoch and has no content from
// that epoch on.
type nodeVersion struct {
	n     *node
	epoch uint64
	prev  atomic.Pointer[nodeVersion]
}

// pageSlot heads one page's version chain. Slots live in a dense table
// indexed by page id (page ids are allocated densely by the page files), so
// a reader's lookup is one atomic slice-pointer load plus an index.
type pageSlot struct {
	head atomic.Pointer[nodeVersion]
}

// resolveVersion walks a chain to the newest version visible at epoch.
// Returns nil when the page has no content at that epoch (tombstone, or a
// page allocated after the snapshot).
func resolveVersion(v *nodeVersion, epoch uint64) *node {
	for v != nil {
		if v.epoch <= epoch {
			return v.n
		}
		v = v.prev.Load()
	}
	return nil
}

// pinSlots is the size of the fixed reader-pin table. Slots are claimed
// with a CAS and padded to a cache line each so concurrent readers don't
// false-share; 64 slots comfortably exceeds any realistic GOMAXPROCS and a
// full table just means the reader spins briefly for a slot.
const pinSlots = 64

type pinSlot struct {
	v atomic.Uint64
	_ [56]byte
}

// retiredVersion records a version chain suffix awaiting reclamation: once
// no pinned reader can need versions older than epoch, succ's prev link is
// severed and the garbage collector takes it from there. For tombstones,
// slot is additionally recorded so the (now contentless) chain head itself
// can be cleared.
type retiredVersion struct {
	succ  *nodeVersion
	slot  *pageSlot
	epoch uint64
}

// mutScope is a writer's private copy-on-write workspace. Ordered slices
// accompany the maps so rollback's best-effort page repairs happen in
// first-touch order — map iteration order is randomized in Go, and a
// nondeterministic order of page operations would consume fault-injection
// decisions in random order, breaking trace reproducibility.
type mutScope struct {
	active     bool
	dirty      map[pagefile.PageID]*node
	dirtyOrder []pagefile.PageID
	fresh      map[pagefile.PageID]struct{}
	freshOrder []pagefile.PageID
	frees      []pagefile.PageID
}

// store mediates between decoded nodes and their on-disk pages. It keeps a
// write-through, multi-version cache of decoded nodes so that traversal
// does not pay a decode per step, while still charging *every* logical
// node access to the page file's counters: the paper's I/O metric is the
// number of disk accesses a cold query would make, so a cache hit must cost
// the same one logical read as a miss.
type store struct {
	file pagefile.File
	dim  int
	bufs sync.Pool // *[]byte scratch pages, one File.PageSize each

	// epoch is the current published commit epoch. It advances only after
	// the tree's new root version is visible (see Tree.commitMutation).
	epoch atomic.Uint64

	// table is the dense page-id → version-chain table. tableMu serializes
	// growth and cache-miss installs; readers only ever load.
	tableMu sync.Mutex
	table   atomic.Pointer[[]pageSlot]

	pins      [pinSlots]pinSlot
	pinCursor atomic.Uint32

	// retired is the reclamation queue, in nondecreasing epoch order. It is
	// touched only by the serialized writer. retiredCount mirrors its
	// length for lock-free introspection.
	retired      []retiredVersion
	retiredCount atomic.Int64

	mut mutScope

	// obs holds the shared node-read/cache-hit counters; nil disables obs
	// accounting (and audits pause it so structural walks don't pollute the
	// operational telemetry, mirroring their pagefile.Stats save/restore).
	obs atomic.Pointer[storeObs]
}

// storeObs is the store's bundle of shared obs counters. Every access
// method resolves the same counter names via obs.IndexCounters, so
// cross-method comparisons read one code path's numbers.
type storeObs struct {
	reads, hits, misses *obs.Counter
}

func storeObsFor(method string) *storeObs {
	reads, hits, misses := obs.IndexCounters(obs.Default(), method)
	return &storeObs{reads: reads, hits: hits, misses: misses}
}

func (s *store) setObs(o *storeObs) { s.obs.Store(o) }

// pauseObs detaches the obs counters and returns the previous attachment
// for resumeObs, so audit walks don't inflate read accounting.
func (s *store) pauseObs() *storeObs {
	o := s.obs.Load()
	s.obs.Store(nil)
	return o
}

func (s *store) resumeObs(o *storeObs) { s.obs.Store(o) }

func newStore(file pagefile.File, dim int) *store {
	s := &store{file: file, dim: dim}
	s.obs.Store(storeObsFor("hybrid"))
	empty := make([]pageSlot, 0)
	s.table.Store(&empty)
	pageSize := file.PageSize()
	s.bufs.New = func() any {
		b := make([]byte, pageSize)
		return &b
	}
	return s
}

// slot returns the chain head slot for id, or nil when the table does not
// yet cover it. Lock-free.
func (s *store) slot(id pagefile.PageID) *pageSlot {
	tab := *s.table.Load()
	if int(id) >= len(tab) {
		return nil
	}
	return &tab[id]
}

// slotLocked returns the slot for id, growing the table as needed. The
// caller must hold tableMu. Growth copies chain-head pointers into a fresh
// slice and publishes it atomically; readers holding the old slice still
// observe every version published before the growth, because slots share
// the chain nodes, and re-load the table on each lookup.
func (s *store) slotLocked(id pagefile.PageID) *pageSlot {
	tab := *s.table.Load()
	if int(id) < len(tab) {
		return &tab[id]
	}
	n := len(tab) * 2
	if n < 64 {
		n = 64
	}
	for int(id) >= n {
		n *= 2
	}
	nt := make([]pageSlot, n)
	for i := range tab {
		nt[i].head.Store(tab[i].head.Load())
	}
	s.table.Store(&nt)
	return &nt[id]
}

// pin claims a reader-pin slot stamped with the current epoch (biased by
// one so zero can mean free) and returns it with the advisory epoch read.
//
// Ordering argument: the reader CASes its slot *before* loading the
// published tree version, and a committing writer publishes the new version
// *before* scanning the pin table (both with sequentially consistent
// atomics). So if the writer's scan misses a reader, that reader's
// subsequent version load must observe the writer's publication — a
// snapshot new enough to need none of the versions the writer retires.
func (s *store) pin() (*pinSlot, uint64) {
	e := s.epoch.Load()
	start := uint(s.pinCursor.Add(1))
	for {
		for i := uint(0); i < pinSlots; i++ {
			sl := &s.pins[(start+i)%pinSlots]
			if sl.v.CompareAndSwap(0, e+1) {
				return sl, e
			}
		}
		runtime.Gosched()
		e = s.epoch.Load()
	}
}

func (s *store) unpin(sl *pinSlot) { sl.v.Store(0) }

// minPinnedEpoch returns the lowest epoch any active reader is pinned at,
// or MaxUint64 when no reader is pinned.
func (s *store) minPinnedEpoch() uint64 {
	min := uint64(math.MaxUint64)
	for i := range s.pins {
		if v := s.pins[i].v.Load(); v != 0 && v-1 < min {
			min = v - 1
		}
	}
	return min
}

// beginMut opens a writer's copy-on-write scope. The caller holds the
// writer lock, so exactly one scope is ever active.
func (s *store) beginMut() {
	s.mut.active = true
	s.mut.dirty = make(map[pagefile.PageID]*node)
	s.mut.fresh = make(map[pagefile.PageID]struct{})
	s.mut.dirtyOrder = s.mut.dirtyOrder[:0]
	s.mut.freshOrder = s.mut.freshOrder[:0]
	s.mut.frees = s.mut.frees[:0]
}

func (s *store) mutActive() bool { return s.mut.active }

func (s *store) endMut() {
	s.mut.active = false
	s.mut.dirty = nil
	s.mut.fresh = nil
	s.mut.dirtyOrder = s.mut.dirtyOrder[:0]
	s.mut.freshOrder = s.mut.freshOrder[:0]
	s.mut.frees = s.mut.frees[:0]
}

// chargeHit accounts one logical random read served from memory.
func (s *store) chargeHit() {
	s.file.Stats().AddRandomReads(1)
	if o := s.obs.Load(); o != nil {
		o.reads.Inc()
		o.hits.Inc()
	}
}

func (s *store) chargeMiss() {
	// The physical ReadPage already bumped the file's counters.
	if o := s.obs.Load(); o != nil {
		o.reads.Inc()
		o.misses.Inc()
	}
}

// readAndDecode loads and decodes id's page from disk.
func (s *store) readAndDecode(id pagefile.PageID) (*node, error) {
	bufp := s.bufs.Get().(*[]byte)
	if err := s.file.ReadPage(id, *bufp); err != nil {
		s.bufs.Put(bufp)
		return nil, err
	}
	n, err := decodeNode(id, *bufp, s.dim)
	s.bufs.Put(bufp)
	return n, err
}

// installBase caches a disk-decoded node as the page's base version (epoch
// 0: a page absent from the table was never mutated in this process, so its
// disk image is valid for every snapshot). First decode wins; a racing
// installer's resolution is returned.
func (s *store) installBase(id pagefile.PageID, n *node, epoch uint64) *node {
	s.tableMu.Lock()
	sl := s.slotLocked(id)
	if v := sl.head.Load(); v != nil {
		if cached := resolveVersion(v, epoch); cached != nil {
			n = cached
		}
		// A chain appeared but has nothing visible at this epoch (e.g. a
		// commit tombstoned the page just after our disk read): return the
		// decoded copy without linking it — installing an epoch-0 head over
		// newer versions would violate the chain's descending-epoch order.
	} else {
		sl.head.Store(&nodeVersion{n: n})
	}
	s.tableMu.Unlock()
	return n
}

// getq resolves id at the given snapshot epoch, counting one logical random
// read and reporting whether it was served from the version cache. This is
// the reader fast path: zero locks, zero allocations when warm.
func (s *store) getq(id pagefile.PageID, epoch uint64) (*node, bool, error) {
	if sl := s.slot(id); sl != nil {
		if n := resolveVersion(sl.head.Load(), epoch); n != nil {
			s.chargeHit()
			return n, true, nil
		}
	}
	n, err := s.readAndDecode(id)
	if err != nil {
		return nil, false, err
	}
	s.chargeMiss()
	return s.installBase(id, n, epoch), false, nil
}

// get resolves id for the writer: inside a mutation scope it returns the
// private dirty clone (creating it on first touch), otherwise the newest
// committed version.
func (s *store) get(id pagefile.PageID) (*node, error) {
	if s.mut.active {
		return s.getMut(id)
	}
	n, _, err := s.getq(id, s.epoch.Load())
	return n, err
}

// getAudit resolves id at epoch without touching the logical read
// accounting, for snapshot audits that must not perturb operational
// telemetry. A cache miss still performs (and physically counts) a real
// disk read.
func (s *store) getAudit(id pagefile.PageID, epoch uint64) (*node, error) {
	if sl := s.slot(id); sl != nil {
		if n := resolveVersion(sl.head.Load(), epoch); n != nil {
			return n, nil
		}
	}
	n, err := s.readAndDecode(id)
	if err != nil {
		return nil, err
	}
	return s.installBase(id, n, epoch), nil
}

// getMut returns a node the mutation may modify freely: the dirty clone if
// one exists, else a fresh clone of the newest committed version. The
// charging mirrors the reader path exactly — first touch costs what a
// reader's hit or miss would, repeat touches cost a hit — so mutation I/O
// accounting is unchanged from the locked design.
func (s *store) getMut(id pagefile.PageID) (*node, error) {
	if n, ok := s.mut.dirty[id]; ok {
		s.chargeHit()
		return n, nil
	}
	var base *node
	if sl := s.slot(id); sl != nil {
		if v := sl.head.Load(); v != nil && v.n != nil {
			base = v.n
		}
	}
	if base != nil {
		s.chargeHit()
	} else {
		n, err := s.readAndDecode(id)
		if err != nil {
			return nil, err
		}
		s.chargeMiss()
		// Install the disk image as the base version so rollback can repair
		// the page and concurrent snapshot readers resolve the pre-image.
		base = s.installBase(id, n, s.epoch.Load())
	}
	d := base.clone()
	s.mut.dirty[id] = d
	s.mut.dirtyOrder = append(s.mut.dirtyOrder, id)
	return d, nil
}

// alloc creates a fresh node of the requested kind backed by a new page.
// The caller must put it once populated.
func (s *store) alloc(leaf bool) (*node, error) {
	id, err := s.file.Allocate()
	if err != nil {
		return nil, err
	}
	n := &node{id: id, leaf: leaf, dim: s.dim, kdRoot: kdNone}
	if s.mut.active {
		s.mut.fresh[id] = struct{}{}
		s.mut.freshOrder = append(s.mut.freshOrder, id)
		s.mut.dirty[id] = n
		s.mut.dirtyOrder = append(s.mut.dirtyOrder, id)
		return n, nil
	}
	s.installNow(id, n)
	return n, nil
}

// installNow publishes n as id's current version outside any mutation
// scope (construction and bulk-load paths, which run before the tree is
// shared).
func (s *store) installNow(id pagefile.PageID, n *node) {
	s.tableMu.Lock()
	sl := s.slotLocked(id)
	sl.head.Store(&nodeVersion{n: n, epoch: s.epoch.Load()})
	s.tableMu.Unlock()
}

// put writes the node through to its page. Inside a mutation scope the
// in-memory publication is deferred to commit; n must already be (or
// becomes) part of the dirty set.
func (s *store) put(n *node) error {
	bufp := s.bufs.Get().(*[]byte)
	size, err := n.encode(*bufp, s.dim)
	if err == nil {
		err = s.file.WritePage(n.id, (*bufp)[:size])
	}
	s.bufs.Put(bufp)
	if err != nil {
		return err
	}
	if s.mut.active {
		if _, ok := s.mut.dirty[n.id]; !ok {
			s.mut.dirtyOrder = append(s.mut.dirtyOrder, n.id)
		}
		s.mut.dirty[n.id] = n
		return nil
	}
	s.installNow(n.id, n)
	return nil
}

// free releases the node's page. Inside a mutation scope the release is
// deferred to commit: rollback must be able to return to the pre-mutation
// state without resurrecting pages, and snapshot readers may still be
// traversing the page's current version.
func (s *store) free(id pagefile.PageID) error {
	if s.mut.active {
		s.mut.frees = append(s.mut.frees, id)
		return nil
	}
	s.tableMu.Lock()
	sl := s.slotLocked(id)
	sl.head.Store(nil)
	s.tableMu.Unlock()
	return s.file.Free(id)
}

// rollbackMut discards the mutation's private state. Shared state was never
// touched, so in-memory rollback is free; what remains is best-effort disk
// repair, because put writes through eagerly: freshly allocated pages are
// released (reverse allocation order) and each dirty page's committed
// pre-image is re-encoded over the aborted write (first-touch order — the
// same deterministic sequence the undo log used, so fault-injection traces
// replay identically).
func (s *store) rollbackMut() {
	for i := len(s.mut.freshOrder) - 1; i >= 0; i-- {
		_ = s.file.Free(s.mut.freshOrder[i]) // best effort: unreachable either way
	}
	for _, id := range s.mut.dirtyOrder {
		if _, fresh := s.mut.fresh[id]; fresh {
			continue
		}
		var pre *node
		if sl := s.slot(id); sl != nil {
			if v := sl.head.Load(); v != nil && v.n != nil {
				pre = v.n
			}
		}
		if pre == nil {
			continue
		}
		bufp := s.bufs.Get().(*[]byte)
		if size, err := pre.encode(*bufp, s.dim); err == nil {
			_ = s.file.WritePage(id, (*bufp)[:size])
		}
		s.bufs.Put(bufp)
	}
	s.endMut()
}

// commitMut links every dirty node into its page's version chain at epoch c
// and tombstones the freed pages. It deliberately returns no error: the
// mutation's logical effect is already fully applied, so a failed page Free
// must not be reported as a failed mutation — the page merely leaks and the
// returned ids let the tree retry later (a failed Free leaves the page
// allocated, so it can never be handed out again meanwhile).
//
// The caller publishes the new tree version and advances the epoch *after*
// this returns; readers filter chains by their snapshot epoch, so the
// partially linked state is invisible until then.
func (s *store) commitMut(c uint64) (leaked []pagefile.PageID) {
	freed := make(map[pagefile.PageID]struct{}, len(s.mut.frees))
	for _, id := range s.mut.frees {
		freed[id] = struct{}{}
	}
	s.tableMu.Lock()
	for _, id := range s.mut.dirtyOrder {
		if _, ok := freed[id]; ok {
			continue
		}
		sl := s.slotLocked(id)
		old := sl.head.Load()
		nv := &nodeVersion{n: s.mut.dirty[id], epoch: c}
		nv.prev.Store(old)
		sl.head.Store(nv)
		if old != nil {
			s.retired = append(s.retired, retiredVersion{succ: nv, epoch: c})
		}
	}
	for _, id := range s.mut.frees {
		sl := s.slotLocked(id)
		old := sl.head.Load()
		tomb := &nodeVersion{epoch: c}
		tomb.prev.Store(old)
		sl.head.Store(tomb)
		s.retired = append(s.retired, retiredVersion{succ: tomb, slot: sl, epoch: c})
	}
	s.tableMu.Unlock()
	s.retiredCount.Store(int64(len(s.retired)))
	for _, id := range s.mut.frees {
		if err := s.file.Free(id); err != nil {
			leaked = append(leaked, id)
		}
	}
	s.endMut()
	return leaked
}

// advanceEpoch publishes c as the current epoch. Called after the tree's
// new root version is visible so a reader's advisory epoch never runs
// ahead of the version it will load.
func (s *store) advanceEpoch(c uint64) { s.epoch.Store(c) }

// reclaimRetired severs the chain suffixes no pinned reader can still
// need and returns how many versions remain retired. Writer-serialized.
func (s *store) reclaimRetired() int {
	if len(s.retired) == 0 {
		return 0
	}
	min := s.minPinnedEpoch()
	n := 0
	for n < len(s.retired) && s.retired[n].epoch <= min {
		r := s.retired[n]
		r.succ.prev.Store(nil)
		if r.slot != nil {
			// Tombstone whose chain is now dead: clear the head too unless
			// the page was reallocated and has a newer chain on top.
			r.slot.head.CompareAndSwap(r.succ, nil)
		}
		s.retired[n] = retiredVersion{}
		n++
	}
	if n > 0 {
		s.retired = append(s.retired[:0], s.retired[n:]...)
	}
	s.retiredCount.Store(int64(len(s.retired)))
	return len(s.retired)
}

// flushAll re-encodes every cached current node to its page in ascending id
// order, repairing any disk pages that a faulty write left stale or torn.
// It stops at the first error.
func (s *store) flushAll() error {
	tab := *s.table.Load()
	for id := range tab {
		v := tab[id].head.Load()
		if v == nil || v.n == nil {
			continue
		}
		bufp := s.bufs.Get().(*[]byte)
		size, err := v.n.encode(*bufp, s.dim)
		if err == nil {
			err = s.file.WritePage(pagefile.PageID(id), (*bufp)[:size])
		}
		s.bufs.Put(bufp)
		if err != nil {
			return err
		}
	}
	return nil
}

// dropCache evicts every single-version chain (used by tests that want to
// force decode paths, and by Close). Multi-version chains are kept: they
// exist precisely because a pinned reader may still need the older
// versions, and the newest version may not have reached disk intact. Safe
// against concurrent readers — an evicted page re-installs from its
// (current, write-through) disk image at the base epoch, which is valid for
// every epoch a reader can still be pinned at.
func (s *store) dropCache() {
	tab := *s.table.Load()
	for i := range tab {
		v := tab[i].head.Load()
		if v != nil && v.n != nil && v.prev.Load() == nil {
			tab[i].head.CompareAndSwap(v, nil)
		}
	}
}
