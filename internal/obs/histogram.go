package obs

import (
	"encoding/json"
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// NumBuckets is the number of histogram buckets: one for the value 0 and
// one per power of two up to the full uint64 range.
const NumBuckets = 65

// Histogram is a fixed-size log2-bucketed histogram of non-negative int64
// observations (latencies in nanoseconds, sizes, counts). Bucket 0 holds
// exactly the value 0; bucket i (i >= 1) holds values in
// [2^(i-1), 2^i - 1]. Observations are single atomic adds with no
// allocation, so histograms are safe on query hot paths; negative values
// (a clock step during a latency measurement) clamp to 0 rather than
// corrupting a bucket index.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [NumBuckets]atomic.Uint64
}

// bucketIndex maps a value to its bucket: 0 for 0, else bits.Len64.
func bucketIndex(v uint64) int { return bits.Len64(v) }

// BucketUpperBound returns the inclusive upper bound of bucket i.
func BucketUpperBound(i int) uint64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return math.MaxUint64
	}
	return 1<<uint(i) - 1
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	h.count.Add(1)
	h.sum.Add(u)
	h.buckets[bucketIndex(u)].Add(1)
}

// ObserveN records the value v as n simultaneous observations — how the
// runtime sampler folds a whole bucket of runtime/metrics deltas in with
// three atomic adds instead of n Observe calls.
func (h *Histogram) ObserveN(v int64, n uint64) {
	if n == 0 {
		return
	}
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	h.count.Add(n)
	h.sum.Add(u * n)
	h.buckets[bucketIndex(u)].Add(n)
}

// ObserveSince records the elapsed nanoseconds since start.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(int64(time.Since(start)))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Merge adds src's observations into h. It is how per-worker unregistered
// histograms (observed without cross-core contention) fold into a shared
// registered one at worker exit. Merging a histogram into itself or a
// concurrently-observed src is safe: each bucket is read once atomically.
func (h *Histogram) Merge(src *Histogram) {
	if src == nil || src == h {
		return
	}
	if n := src.count.Load(); n > 0 {
		h.count.Add(n)
	}
	if s := src.sum.Load(); s > 0 {
		h.sum.Add(s)
	}
	for i := range src.buckets {
		if n := src.buckets[i].Load(); n > 0 {
			h.buckets[i].Add(n)
		}
	}
}

// Reset zeroes the histogram. Only for unregistered scratch histograms
// between reuses; resetting a shared registered histogram would race with
// concurrent observers' count/sum/bucket triple.
func (h *Histogram) Reset() {
	h.count.Store(0)
	h.sum.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// Quantile returns an estimate of the q-quantile (0 <= q <= 1),
// interpolating linearly inside the bucket that contains the target rank.
// It returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	s := h.Snapshot()
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := 0.0
	for _, b := range s.Buckets {
		next := cum + float64(b.Count)
		if next >= rank {
			lo := float64(0)
			if b.Le > 0 {
				lo = float64(b.Le)/2 + 0.5
			}
			hi := float64(b.Le)
			frac := 0.0
			if b.Count > 0 {
				frac = (rank - cum) / float64(b.Count)
			}
			return lo + (hi-lo)*frac
		}
		cum = next
	}
	return float64(s.Buckets[len(s.Buckets)-1].Le)
}

// Bucket is one non-empty histogram bucket: its inclusive upper bound and
// its (non-cumulative) count.
type Bucket struct {
	Le    uint64 `json:"le"`
	Count uint64 `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a histogram with empty
// buckets elided.
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot copies the histogram's current state. Concurrent observers may
// land between the bucket reads, so the invariant is only that the
// snapshot is some valid recent state, which is all exposition needs.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, Bucket{Le: BucketUpperBound(i), Count: n})
		}
	}
	return s
}

// MarshalJSON lets a bare *Histogram embed in JSON output as its snapshot.
func (h *Histogram) MarshalJSON() ([]byte, error) {
	return json.Marshal(h.Snapshot())
}
