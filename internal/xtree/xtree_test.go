package xtree

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"hybridtree/internal/dist"
	"hybridtree/internal/geom"
	"hybridtree/internal/pagefile"
)

func build(t testing.TB, n, dim, pageSize int, seed int64) (*Tree, []geom.Point) {
	t.Helper()
	file := pagefile.NewMemFile(pageSize)
	tree, err := New(file, Config{Dim: dim, PageSize: pageSize})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, dim)
		for d := range p {
			p[d] = rng.Float32()
		}
		pts[i] = p
		if err := tree.Insert(p, uint64(i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	return tree, pts
}

func TestValidation(t *testing.T) {
	file := pagefile.NewMemFile(4096)
	if _, err := New(file, Config{Dim: 0}); err == nil {
		t.Fatal("dim 0 accepted")
	}
	if _, err := New(pagefile.NewMemFile(64), Config{Dim: 64, PageSize: 64}); err == nil {
		t.Fatal("impossible geometry accepted")
	}
	tree, err := New(file, Config{Dim: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Insert(geom.Point{0.5}, 1); err == nil {
		t.Fatal("wrong dim accepted")
	}
	if _, err := tree.SearchBox(geom.UnitCube(2)); err == nil {
		t.Fatal("wrong dim query accepted")
	}
	if _, err := tree.SearchKNN(make(geom.Point, 4), 0, dist.L2()); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := tree.SearchRange(make(geom.Point, 4), -1, dist.L2()); err == nil {
		t.Fatal("negative radius accepted")
	}
}

func TestBoxMatchesBruteForce(t *testing.T) {
	for _, tc := range []struct {
		n, dim, page int
		side         float32
	}{
		{3000, 4, 512, 0.4},
		{2000, 8, 1024, 0.7},
		{800, 32, 4096, 1.1},
	} {
		t.Run(fmt.Sprintf("n%d_d%d", tc.n, tc.dim), func(t *testing.T) {
			tree, pts := build(t, tc.n, tc.dim, tc.page, 42)
			rng := rand.New(rand.NewSource(7))
			for q := 0; q < 20; q++ {
				lo := make(geom.Point, tc.dim)
				hi := make(geom.Point, tc.dim)
				for d := 0; d < tc.dim; d++ {
					c := rng.Float32()
					lo[d], hi[d] = c-tc.side/2, c+tc.side/2
				}
				rect := geom.Rect{Lo: lo, Hi: hi}
				got, err := tree.SearchBox(rect)
				if err != nil {
					t.Fatal(err)
				}
				gotSet := make(map[uint64]bool)
				for _, e := range got {
					gotSet[e.RID] = true
				}
				want := 0
				for i, p := range pts {
					if rect.Contains(p) {
						want++
						if !gotSet[uint64(i)] {
							t.Fatalf("query %d: missing %d", q, i)
						}
					}
				}
				if len(gotSet) != want {
					t.Fatalf("query %d: got %d, want %d", q, len(gotSet), want)
				}
			}
		})
	}
}

func TestRangeAndKNN(t *testing.T) {
	tree, pts := build(t, 2000, 8, 1024, 13)
	rng := rand.New(rand.NewSource(17))
	m := dist.L2()
	for q := 0; q < 10; q++ {
		center := pts[rng.Intn(len(pts))]
		r := 0.2 + rng.Float64()*0.3
		got, err := tree.SearchRange(center, r, m)
		if err != nil {
			t.Fatal(err)
		}
		count := 0
		for _, p := range pts {
			if m.Distance(center, p) <= r {
				count++
			}
		}
		if len(got) != count {
			t.Fatalf("range: got %d, want %d", len(got), count)
		}
	}
	query := pts[5]
	got, err := tree.SearchKNN(query, 12, m)
	if err != nil {
		t.Fatal(err)
	}
	dists := make([]float64, len(pts))
	for i, p := range pts {
		dists[i] = m.Distance(query, p)
	}
	sort.Float64s(dists)
	for i, nb := range got {
		if diff := nb.Dist - dists[i]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("knn %d: %g vs %g", i, nb.Dist, dists[i])
		}
	}
}

// High-dimensional clustered data must force supernodes — the X-tree's
// signature response to unsplittable overlap — and the tree must stay
// correct around them.
func TestSupernodesForm(t *testing.T) {
	const dim = 32
	rng := rand.New(rand.NewSource(23))
	file := pagefile.NewMemFile(4096)
	tree, err := New(file, Config{Dim: dim, PageSize: 4096, MaxOverlap: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	pts := make([]geom.Point, 4000)
	for i := range pts {
		p := make(geom.Point, dim)
		for d := range p {
			p[d] = rng.Float32()
		}
		pts[i] = p
		if err := tree.Insert(p, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	st, err := tree.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Supernodes == 0 {
		t.Fatal("expected supernodes under heavy overlap pressure")
	}
	cfg := tree.cfg
	if st.MaxFanout <= cfg.nodeCap() {
		t.Fatalf("max fanout %d does not exceed one page's capacity", st.MaxFanout)
	}
	t.Logf("xtree stats: %+v (page cap %d)", st, cfg.nodeCap())

	// Queries remain exact with supernodes in play.
	for q := 0; q < 10; q++ {
		lo := make(geom.Point, dim)
		hi := make(geom.Point, dim)
		for d := 0; d < dim; d++ {
			c := rng.Float32()
			lo[d], hi[d] = c-0.45, c+0.45
		}
		rect := geom.Rect{Lo: lo, Hi: hi}
		got, err := tree.SearchBox(rect)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for _, p := range pts {
			if rect.Contains(p) {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("query %d: got %d, want %d", q, len(got), want)
		}
	}
}

// Supernode page chains must round-trip the codec and cost one read per
// chain page.
func TestSupernodeCodecAndAccounting(t *testing.T) {
	const dim = 16
	file := pagefile.NewMemFile(2048)
	tree, err := New(file, Config{Dim: dim, PageSize: 2048, MaxOverlap: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(29))
	pts := make([]geom.Point, 3000)
	for i := range pts {
		p := make(geom.Point, dim)
		for d := range p {
			p[d] = rng.Float32()
		}
		pts[i] = p
		if err := tree.Insert(p, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	st, err := tree.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.ChainPages == 0 {
		t.Skip("no supernodes formed at this configuration")
	}
	// Force full decode and compare a query before/after.
	rect := geom.NewRect(make(geom.Point, dim), geom.Point{0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5})
	before, err := tree.SearchBox(rect)
	if err != nil {
		t.Fatal(err)
	}
	tree.cache = map[pagefile.PageID]*node{}
	after, err := tree.SearchBox(rect)
	if err != nil {
		t.Fatal(err)
	}
	if len(before) != len(after) {
		t.Fatalf("decode changed results: %d vs %d", len(before), len(after))
	}
}
