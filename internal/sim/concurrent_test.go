package sim

import "testing"

// TestRunConcurrent exercises the reader-during-writer-burst differential
// oracle across a few seeds. Run with -race: the oracle's value is exactly
// that its checks hold for every interleaving of lock-free snapshot reads
// against the committing writer.
func TestRunConcurrent(t *testing.T) {
	for _, seed := range []int64{1, 7} {
		res, err := RunConcurrent(ConcurrentConfig{Seed: seed, Inserts: 600, Readers: 3})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Snapshots == 0 {
			t.Fatalf("seed %d: no snapshots verified", seed)
		}
		if res.MaxPrefix > res.FinalSize {
			t.Fatalf("seed %d: observed prefix %d beyond final size %d", seed, res.MaxPrefix, res.FinalSize)
		}
		if res.FinalEpochs == 0 {
			t.Fatalf("seed %d: no commit epochs published", seed)
		}
		t.Logf("seed %d: %d snapshots, %d knn checks, prefix [%d,%d], %d epochs",
			seed, res.Snapshots, res.KNNChecked, res.MinPrefix, res.MaxPrefix, res.FinalEpochs)
	}
}
