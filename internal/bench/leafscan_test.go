package bench

import (
	"math"
	"os"
	"testing"

	"hybridtree/internal/geom"
)

// leafDim/leafCount size the benchmark leaf like a real 4K data page at 16
// dimensions: 4096/(8+4*16) ≈ 56 entries.
const (
	leafDim     = 16
	leafEntries = 56
)

func leafFixture(t testing.TB) (geom.Point, *LegacyLeaf, *SlabLeaf) {
	t.Helper()
	page := EncodeLeafPage(leafDim, leafEntries, 99)
	legacy, err := DecodeLegacyLeaf(page, leafDim)
	if err != nil {
		t.Fatal(err)
	}
	slab, err := DecodeSlabLeaf(page, leafDim)
	if err != nil {
		t.Fatal(err)
	}
	q := make(geom.Point, leafDim)
	for d := range q {
		q[d] = 0.5
	}
	return q, legacy, slab
}

// TestLeafScanLayoutsAgree pins the two decoders and the two scan loops to
// each other: same points, same rids, same best distance and same
// within-bound count at several bounds (including one that triggers early
// abandonment on most entries).
func TestLeafScanLayoutsAgree(t *testing.T) {
	q, legacy, slab := leafFixture(t)
	if len(legacy.Pts) != leafEntries || len(slab.Rids) != leafEntries {
		t.Fatalf("decoded %d / %d entries, want %d", len(legacy.Pts), len(slab.Rids), leafEntries)
	}
	for i := range legacy.Pts {
		if legacy.Rids[i] != slab.Rids[i] {
			t.Fatalf("entry %d: rid %d vs %d", i, legacy.Rids[i], slab.Rids[i])
		}
		for d := 0; d < leafDim; d++ {
			if legacy.Pts[i][d] != slab.Vals[i*leafDim+d] {
				t.Fatalf("entry %d dim %d: %v vs %v", i, d, legacy.Pts[i][d], slab.Vals[i*leafDim+d])
			}
		}
	}
	out := make([]float64, leafEntries)
	for _, bound := range []float64{math.Inf(1), 1.5, 0.4, 0.05} {
		lBest, lWithin := ScanLegacyKNN(q, legacy, bound)
		sBest, sWithin := ScanSlabKNN(q, slab, bound, out)
		if lBest != sBest || lWithin != sWithin {
			t.Fatalf("bound %v: legacy (%v, %d) vs slab (%v, %d)", bound, lBest, lWithin, sBest, sWithin)
		}
	}
}

// TestLeafScanGate is the CI regression gate for the slab layout: on the
// same machine, in the same process, the slab k-NN leaf scan must not be
// slower than the legacy per-point scan (with a generous tolerance for
// shared-runner noise). Timing-sensitive, so it only runs when LEAF_GATE=1.
func TestLeafScanGate(t *testing.T) {
	if os.Getenv("LEAF_GATE") != "1" {
		t.Skip("set LEAF_GATE=1 to run the leaf-scan layout gate")
	}
	q, legacy, slab := leafFixture(t)
	out := make([]float64, leafEntries)
	const bound = 1.5

	legacyRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ScanLegacyKNN(q, legacy, bound)
		}
	})
	slabRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ScanSlabKNN(q, slab, bound, out)
		}
	})
	t.Logf("legacy %v/op, slab %v/op", legacyRes.NsPerOp(), slabRes.NsPerOp())
	// 1.25x headroom: the gate catches real regressions (the slab kernel
	// falling off its fast path), not scheduler jitter.
	if float64(slabRes.NsPerOp()) > 1.25*float64(legacyRes.NsPerOp()) {
		t.Fatalf("slab scan %d ns/op slower than legacy %d ns/op", slabRes.NsPerOp(), legacyRes.NsPerOp())
	}
}

// BenchmarkLeafScanLegacy / BenchmarkLeafScanSlab measure the k-NN-style
// bounded scan over one decoded leaf in each layout.
func BenchmarkLeafScanLegacy(b *testing.B) {
	q, legacy, _ := leafFixture(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ScanLegacyKNN(q, legacy, 1.5)
	}
}

func BenchmarkLeafScanSlab(b *testing.B) {
	q, _, slab := leafFixture(b)
	out := make([]float64, leafEntries)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ScanSlabKNN(q, slab, 1.5, out)
	}
}

// BenchmarkLeafDecodeLegacy / BenchmarkLeafDecodeSlab measure the page →
// in-memory decode in each layout; the slab does two allocations total where
// the legacy path does one per entry.
func BenchmarkLeafDecodeLegacy(b *testing.B) {
	page := EncodeLeafPage(leafDim, leafEntries, 99)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeLegacyLeaf(page, leafDim); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLeafDecodeSlab(b *testing.B) {
	page := EncodeLeafPage(leafDim, leafEntries, 99)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeSlabLeaf(page, leafDim); err != nil {
			b.Fatal(err)
		}
	}
}
