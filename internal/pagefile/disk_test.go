package pagefile

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestOpenDiskFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reopen.db")
	f, err := CreateDiskFile(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	var ids []PageID
	for i := 0; i < 5; i++ {
		id, err := f.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		if err := f.WritePage(id, []byte{byte(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenDiskFile(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.NumPages() != 5 {
		t.Fatalf("reopened pages = %d, want 5", re.NumPages())
	}
	buf := make([]byte, 256)
	for i, id := range ids {
		if err := re.ReadPage(id, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != byte(i+1) {
			t.Fatalf("page %d content = %d", id, buf[0])
		}
	}
	// Allocation resumes past the end.
	id, err := re.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if id != 5 {
		t.Fatalf("new allocation = %d, want 5", id)
	}
}

func TestOpenDiskFileErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := OpenDiskFile(filepath.Join(dir, "missing.db"), 256); err == nil {
		t.Fatal("missing file opened")
	}
	// Size not a multiple of the page size.
	ragged := filepath.Join(dir, "ragged.db")
	if err := os.WriteFile(ragged, make([]byte, 300), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDiskFile(ragged, 256); err == nil {
		t.Fatal("ragged file accepted")
	}
}

func TestDiskFileErrorPaths(t *testing.T) {
	path := filepath.Join(t.TempDir(), "err.db")
	f, err := CreateDiskFile(path, 128)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 128)
	if err := f.ReadPage(0, buf); !errors.Is(err, ErrPageBounds) {
		t.Fatalf("oob read err = %v", err)
	}
	id, _ := f.Allocate()
	if err := f.WritePage(id, make([]byte, 129)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversize err = %v", err)
	}
	if err := f.Free(id); err != nil {
		t.Fatal(err)
	}
	if err := f.ReadPageSeq(id, buf); !errors.Is(err, ErrPageFreed) {
		t.Fatalf("freed read err = %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Allocate(); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed alloc err = %v", err)
	}
	if err := f.ReadPage(id, buf); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed read err = %v", err)
	}
}

func TestBufferedFlushPropagatesErrors(t *testing.T) {
	inner := NewMemFile(64)
	fault := NewFaultFile(inner, 1<<30)
	b := NewBuffered(fault, 8)
	id, err := b.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if err := b.WritePage(id, []byte("x")); err != nil {
		t.Fatal(err)
	}
	fault.SetRemaining(0)
	if err := b.Flush(); !errors.Is(err, ErrInjected) {
		t.Fatalf("flush err = %v, want ErrInjected", err)
	}
}

func TestBufferedSeqReads(t *testing.T) {
	inner := NewMemFile(64)
	b := NewBuffered(inner, 2)
	id, _ := b.Allocate()
	_ = b.WritePage(id, []byte("hello"))
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	// Evict by touching two other pages.
	id2, _ := b.Allocate()
	id3, _ := b.Allocate()
	_ = b.WritePage(id2, []byte("a"))
	_ = b.WritePage(id3, []byte("b"))
	buf := make([]byte, 64)
	inner.Stats().Reset()
	b.Stats().Reset()
	if err := b.ReadPageSeq(id, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf[:5], []byte("hello")) {
		t.Fatal("content mismatch after eviction")
	}
	if b.Stats().SeqReads != 1 {
		t.Fatalf("buffered seq misses = %d, want 1", b.Stats().SeqReads)
	}
	if b.NumPages() != 3 || b.PageSize() != 64 {
		t.Fatal("passthrough accessors wrong")
	}
	// Free drops the buffered copy.
	if err := b.Free(id); err != nil {
		t.Fatal(err)
	}
	if err := b.ReadPage(id, buf); !errors.Is(err, ErrPageFreed) {
		t.Fatalf("freed read err = %v", err)
	}
}
