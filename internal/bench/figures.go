package bench

import (
	"fmt"

	"hybridtree/internal/core"
	"hybridtree/internal/dataset"
	"hybridtree/internal/dist"
	"hybridtree/internal/geom"
	"hybridtree/internal/index"
	"hybridtree/internal/seqscan"
	"hybridtree/internal/workload"
)

// ColHistDims and FourierDims are the dimensionalities of the paper's two
// datasets.
var (
	ColHistDims = []int{16, 32, 64}
	FourierDims = []int{8, 12, 16}
)

// colhistWorkload builds a COLHIST dataset and its calibrated box queries.
func colhistWorkload(o Options, n, dim int) ([]geom.Point, []geom.Rect, float64, error) {
	data := dataset.ColHist(n, dim, o.Seed)
	queries, side, err := workload.BoxQueries(data, o.Queries, workload.ColHistSelectivity, o.Seed+7)
	return data, queries, side, err
}

// fourierWorkload builds a FOURIER dataset and its calibrated box queries.
func fourierWorkload(o Options, n, dim int) ([]geom.Point, []geom.Rect, float64, error) {
	data := dataset.Fourier(n, dim, o.Seed)
	queries, side, err := workload.BoxQueries(data, o.Queries, workload.FourierSelectivity, o.Seed+7)
	return data, queries, side, err
}

// Fig5ab reproduces Figure 5(a) and (b): query performance of the hybrid
// tree built with EDA-optimal node splitting vs. the VAMSplit algorithm, on
// COLHIST at 16/32/64 dimensions. Returns the disk-access figure (a) and
// the CPU-time figure (b). Expected shape: EDA <= VAM everywhere, the gap
// widening with dimensionality.
func Fig5ab(o Options) (*Figure, *Figure, error) {
	o = o.withDefaults()
	figA := &Figure{
		Title: "Figure 5(a): EDA-optimal vs VAM split — disk accesses (COLHIST)",
		XLabel: "dims", YLabel: "avg disk accesses per query",
		Series: []Series{{Label: "EDA-optimal"}, {Label: "VAM"}},
	}
	figB := &Figure{
		Title: "Figure 5(b): EDA-optimal vs VAM split — CPU time (COLHIST)",
		XLabel: "dims", YLabel: "avg CPU seconds per query",
		Series: []Series{{Label: "EDA-optimal"}, {Label: "VAM"}},
	}
	for _, dim := range ColHistDims {
		data, queries, side, err := colhistWorkload(o, o.ColHistN, dim)
		if err != nil {
			return nil, nil, err
		}
		o.logf("fig5ab: dim=%d side=%.3g\n", dim, side)
		figA.X = append(figA.X, float64(dim))
		figB.X = append(figB.X, float64(dim))
		for si, policy := range []core.SplitPolicy{core.EDAPolicy{}, core.VAMPolicy{}} {
			tree, err := BuildHybrid(data, o.PageSize, core.Config{Policy: policy, QuerySide: side})
			if err != nil {
				return nil, nil, err
			}
			m, err := RunBox(tree, queries, 0, 0)
			if err != nil {
				return nil, nil, err
			}
			figA.Series[si].Y = append(figA.Series[si].Y, m.AvgIO)
			figB.Series[si].Y = append(figB.Series[si].Y, m.AvgCPU.Seconds())
			o.logf("fig5ab: dim=%d %s io=%.1f cpu=%v\n", dim, policy.Name(), m.AvgIO, m.AvgCPU)
		}
	}
	return figA, figB, nil
}

// ELSBitSweep is the x axis of Figure 5(c).
var ELSBitSweep = []int{0, 1, 2, 4, 6, 8, 12, 16}

// Fig5c reproduces Figure 5(c): the effect of encoded-live-space precision
// on disk accesses, COLHIST at 16/32/64 dimensions, bits 0 (no ELS) to 16.
// Expected shape: a large drop from 0 to ~4 bits, then a plateau.
func Fig5c(o Options) (*Figure, error) {
	o = o.withDefaults()
	fig := &Figure{
		Title: "Figure 5(c): effect of ELS precision on disk accesses (COLHIST)",
		XLabel: "bits/boundary", YLabel: "avg disk accesses per query",
	}
	for _, bits := range ELSBitSweep {
		fig.X = append(fig.X, float64(bits))
	}
	for _, dim := range ColHistDims {
		data, queries, side, err := colhistWorkload(o, o.ColHistN, dim)
		if err != nil {
			return nil, err
		}
		tree, err := BuildHybrid(data, o.PageSize, core.Config{QuerySide: side})
		if err != nil {
			return nil, err
		}
		s := Series{Label: fmt.Sprintf("%d-d COLHIST", dim)}
		for _, bits := range ELSBitSweep {
			// The structure is independent of ELS precision, so one build
			// serves the whole sweep.
			if err := tree.SetELSPrecision(bits); err != nil {
				return nil, err
			}
			m, err := RunBox(tree, queries, 0, 0)
			if err != nil {
				return nil, err
			}
			s.Y = append(s.Y, m.AvgIO)
			o.logf("fig5c: dim=%d bits=%d io=%.1f els=%dB\n", dim, bits, m.AvgIO, tree.ELSMemoryBytes())
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// competitors builds the Figure 6/7 line-up over one dataset: hybrid tree,
// hB-tree, SR-tree. The scan baseline is returned separately.
func competitors(o Options, data []geom.Point, side float64) ([]index.Index, *seqscan.Scan, error) {
	hybrid, err := BuildHybrid(data, o.PageSize, core.Config{QuerySide: side})
	if err != nil {
		return nil, nil, err
	}
	hb, err := BuildHB(data, o.PageSize)
	if err != nil {
		return nil, nil, err
	}
	sr, err := BuildSR(data, o.PageSize)
	if err != nil {
		return nil, nil, err
	}
	scan, err := BuildScan(data, o.PageSize)
	if err != nil {
		return nil, nil, err
	}
	return []index.Index{hybrid, hb, sr}, scan, nil
}

// Fig6 reproduces Figure 6: scalability with dimensionality. Dataset is
// "FOURIER" — (a) I/O, (b) CPU over 8/12/16 dims — or "COLHIST" — (c) I/O,
// (d) CPU over 16/32/64 dims. Costs are normalized against linear scan
// (scan's normalized I/O is 0.1 and CPU is 1.0; both appear as a series).
// Expected shape: hybrid < hB < SR on I/O at every dimensionality, with SR
// crossing the 0.1 scan line first.
func Fig6(o Options, datasetName string) (*Figure, *Figure, error) {
	o = o.withDefaults()
	var dims []int
	var load func(Options, int, int) ([]geom.Point, []geom.Rect, float64, error)
	var n int
	var panel string
	switch datasetName {
	case "FOURIER":
		dims, load, n, panel = FourierDims, fourierWorkload, o.FourierN, "(a,b)"
	case "COLHIST":
		dims, load, n, panel = ColHistDims, colhistWorkload, o.ColHistN, "(c,d)"
	default:
		return nil, nil, fmt.Errorf("bench: unknown dataset %q", datasetName)
	}
	figIO := &Figure{
		Title: fmt.Sprintf("Figure 6%s: normalized I/O cost vs dimensionality (%s %dK)", panel, datasetName, n/1000),
		XLabel: "dims", YLabel: "normalized I/O cost (scan = 0.1)",
		Series: []Series{{Label: "Hybrid Tree"}, {Label: "hB-tree"}, {Label: "SR-tree"}, {Label: "linear scan"}},
	}
	figCPU := &Figure{
		Title: fmt.Sprintf("Figure 6%s: normalized CPU cost vs dimensionality (%s %dK)", panel, datasetName, n/1000),
		XLabel: "dims", YLabel: "normalized CPU cost (scan = 1.0)",
		Series: []Series{{Label: "Hybrid Tree"}, {Label: "hB-tree"}, {Label: "SR-tree"}, {Label: "linear scan"}},
	}
	for _, dim := range dims {
		data, queries, side, err := load(o, n, dim)
		if err != nil {
			return nil, nil, err
		}
		o.logf("fig6 %s: dim=%d side=%.3g building...\n", datasetName, dim, side)
		idxs, scan, err := competitors(o, data, side)
		if err != nil {
			return nil, nil, err
		}
		scanCPU, err := ScanCPU(scan, queries)
		if err != nil {
			return nil, nil, err
		}
		figIO.X = append(figIO.X, float64(dim))
		figCPU.X = append(figCPU.X, float64(dim))
		for si, idx := range idxs {
			m, err := RunBox(idx, queries, scan.NumPages(), scanCPU)
			if err != nil {
				return nil, nil, err
			}
			figIO.Series[si].Y = append(figIO.Series[si].Y, m.NormIO)
			figCPU.Series[si].Y = append(figCPU.Series[si].Y, m.NormCPU)
			o.logf("fig6 %s: dim=%d %s normIO=%.4f normCPU=%.4f (io=%.1f cpu=%v)\n",
				datasetName, dim, idx.Name(), m.NormIO, m.NormCPU, m.AvgIO, m.AvgCPU)
		}
		figIO.Series[3].Y = append(figIO.Series[3].Y, 0.1)
		figCPU.Series[3].Y = append(figCPU.Series[3].Y, 1.0)
	}
	return figIO, figCPU, nil
}

// Fig7ab reproduces Figure 7(a,b): scalability with database size on 64-d
// COLHIST. Sizes sweep from ~36% of ColHistN up to ColHistN (the paper's
// 25K..70K). Expected shape: the hybrid tree's normalized cost is flat to
// decreasing (sublinear absolute growth) and roughly an order of magnitude
// below the SR-tree.
func Fig7ab(o Options) (*Figure, *Figure, error) {
	o = o.withDefaults()
	const dim = 64
	figIO := &Figure{
		Title: fmt.Sprintf("Figure 7(a): normalized I/O cost vs database size (64-d COLHIST, up to %dK)", o.ColHistN/1000),
		XLabel: "tuples(x1000)", YLabel: "normalized I/O cost (scan = 0.1)",
		Series: []Series{{Label: "Hybrid Tree"}, {Label: "hB-tree"}, {Label: "SR-tree"}, {Label: "linear scan"}},
	}
	figCPU := &Figure{
		Title: "Figure 7(b): normalized CPU cost vs database size (64-d COLHIST)",
		XLabel: "tuples(x1000)", YLabel: "normalized CPU cost (scan = 1.0)",
		Series: []Series{{Label: "Hybrid Tree"}, {Label: "hB-tree"}, {Label: "SR-tree"}, {Label: "linear scan"}},
	}
	// The paper sweeps 25K..70K; scale the same 25/70..70/70 ratios.
	fractions := []float64{25.0 / 70, 34.0 / 70, 43.0 / 70, 52.0 / 70, 61.0 / 70, 1.0}
	full := dataset.ColHist(o.ColHistN, dim, o.Seed)
	for _, frac := range fractions {
		n := int(float64(o.ColHistN) * frac)
		data := full[:n]
		queries, side, err := workload.BoxQueries(data, o.Queries, workload.ColHistSelectivity, o.Seed+7)
		if err != nil {
			return nil, nil, err
		}
		o.logf("fig7ab: n=%d side=%.3g building...\n", n, side)
		idxs, scan, err := competitors(o, data, side)
		if err != nil {
			return nil, nil, err
		}
		scanCPU, err := ScanCPU(scan, queries)
		if err != nil {
			return nil, nil, err
		}
		figIO.X = append(figIO.X, float64(n)/1000)
		figCPU.X = append(figCPU.X, float64(n)/1000)
		for si, idx := range idxs {
			m, err := RunBox(idx, queries, scan.NumPages(), scanCPU)
			if err != nil {
				return nil, nil, err
			}
			figIO.Series[si].Y = append(figIO.Series[si].Y, m.NormIO)
			figCPU.Series[si].Y = append(figCPU.Series[si].Y, m.NormCPU)
			o.logf("fig7ab: n=%d %s normIO=%.4f normCPU=%.4f\n", n, idx.Name(), m.NormIO, m.NormCPU)
		}
		figIO.Series[3].Y = append(figIO.Series[3].Y, 0.1)
		figCPU.Series[3].Y = append(figCPU.Series[3].Y, 1.0)
	}
	return figIO, figCPU, nil
}

// Fig7cd reproduces Figure 7(c,d): distance-based range queries under the
// L1 (Manhattan) metric on COLHIST, hybrid tree vs SR-tree (the hB-tree is
// excluded because it does not support distance-based search — the paper's
// footnote 2). Expected shape: hybrid below SR at every dimensionality.
func Fig7cd(o Options) (*Figure, *Figure, error) {
	o = o.withDefaults()
	metric := dist.L1()
	figIO := &Figure{
		Title: "Figure 7(c): normalized I/O cost, L1 distance queries (COLHIST)",
		XLabel: "dims", YLabel: "normalized I/O cost (scan = 0.1)",
		Series: []Series{{Label: "Hybrid Tree"}, {Label: "SR-tree"}, {Label: "linear scan"}},
	}
	figCPU := &Figure{
		Title: "Figure 7(d): normalized CPU cost, L1 distance queries (COLHIST)",
		XLabel: "dims", YLabel: "normalized CPU cost (scan = 1.0)",
		Series: []Series{{Label: "Hybrid Tree"}, {Label: "SR-tree"}, {Label: "linear scan"}},
	}
	for _, dim := range ColHistDims {
		data := dataset.ColHist(o.ColHistN, dim, o.Seed)
		queries, radius, err := workload.RangeQueries(data, o.Queries, workload.ColHistSelectivity, metric, o.Seed+7)
		if err != nil {
			return nil, nil, err
		}
		o.logf("fig7cd: dim=%d radius=%.3g building...\n", dim, radius)
		// The EDA split objective's query-side parameter for an L1 ball of
		// radius R: the per-dimension share R/k of the distance budget.
		hybrid, err := BuildHybrid(data, o.PageSize, core.Config{QuerySide: radius / float64(dim)})
		if err != nil {
			return nil, nil, err
		}
		sr, err := BuildSR(data, o.PageSize)
		if err != nil {
			return nil, nil, err
		}
		scan, err := BuildScan(data, o.PageSize)
		if err != nil {
			return nil, nil, err
		}
		scanCPU, err := ScanCPURange(scan, queries, metric)
		if err != nil {
			return nil, nil, err
		}
		figIO.X = append(figIO.X, float64(dim))
		figCPU.X = append(figCPU.X, float64(dim))
		for si, idx := range []index.Index{hybrid, sr} {
			m, err := RunRange(idx, queries, metric, scan.NumPages(), scanCPU)
			if err != nil {
				return nil, nil, err
			}
			figIO.Series[si].Y = append(figIO.Series[si].Y, m.NormIO)
			figCPU.Series[si].Y = append(figCPU.Series[si].Y, m.NormCPU)
			o.logf("fig7cd: dim=%d %s normIO=%.4f normCPU=%.4f\n", dim, idx.Name(), m.NormIO, m.NormCPU)
		}
		figIO.Series[2].Y = append(figIO.Series[2].Y, 0.1)
		figCPU.Series[2].Y = append(figCPU.Series[2].Y, 1.0)
	}
	return figIO, figCPU, nil
}
