package concurrent

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hybridtree/internal/core"
	"hybridtree/internal/dist"
	"hybridtree/internal/geom"
)

// panicMetric panics on every distance call — the fault the panic-isolation
// tests inject through the public search API.
type panicMetric struct{}

func (panicMetric) Name() string                     { return "panic" }
func (panicMetric) Distance(a, b geom.Point) float64 { panic("injected metric panic") }
func (panicMetric) MinDistRect(p geom.Point, r geom.Rect) float64 {
	panic("injected metric panic")
}

func TestExecutorShedsWhenQueueFull(t *testing.T) {
	tree, pts := buildTree(t, 4, 500, 512)
	defer tree.Close()
	// One worker, depth-1 queue, and the worker wedged on a blocking task:
	// the queue fills deterministically.
	e := NewExecutor(tree, ExecutorConfig{Workers: 1, QueueDepth: 1})
	block := make(chan struct{})
	started := make(chan struct{})
	var wedged sync.WaitGroup
	wedged.Add(1)
	go func() {
		defer wedged.Done()
		_ = e.Do(context.Background(), func(c *core.QueryContext) error {
			close(started)
			<-block
			return nil
		})
	}()
	<-started

	// Fill the queue (one slot), then watch the next submit shed.
	var queued sync.WaitGroup
	queued.Add(1)
	go func() {
		defer queued.Done()
		_, _ = e.SearchKNN(context.Background(), pts[0], 5, dist.L2(), core.Budget{})
	}()
	deadline := time.Now().Add(2 * time.Second)
	for len(e.tasks) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("queued task never landed in the channel")
		}
		runtime.Gosched()
	}

	_, err := e.SearchKNN(context.Background(), pts[1], 5, dist.L2(), core.Budget{})
	if !errors.Is(err, ErrShed) {
		t.Fatalf("err = %v, want ErrShed", err)
	}

	close(block)
	queued.Wait()
	wedged.Wait()
	e.Close()
}

func TestExecutorShedsExpiredDeadlineWhileQueued(t *testing.T) {
	tree, pts := buildTree(t, 4, 500, 512)
	defer tree.Close()
	e := NewExecutor(tree, ExecutorConfig{Workers: 1, QueueDepth: 4})
	block := make(chan struct{})
	started := make(chan struct{})
	var wedged sync.WaitGroup
	wedged.Add(1)
	go func() {
		defer wedged.Done()
		_ = e.Do(context.Background(), func(c *core.QueryContext) error {
			close(started)
			<-block
			return nil
		})
	}()
	<-started

	// This request queues behind the wedge; its context is cancelled before
	// the worker frees up, so it must shed, not run.
	ctx, cancel := context.WithCancel(context.Background())
	var ran bool
	var shedErr error
	var queued sync.WaitGroup
	queued.Add(1)
	go func() {
		defer queued.Done()
		shedErr = e.Do(ctx, func(c *core.QueryContext) error {
			ran = true
			return nil
		})
	}()
	deadline := time.Now().Add(2 * time.Second)
	for len(e.tasks) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("queued task never landed in the channel")
		}
		runtime.Gosched()
	}
	cancel()
	close(block)
	queued.Wait()
	wedged.Wait()
	if !errors.Is(shedErr, ErrShed) {
		t.Fatalf("err = %v, want ErrShed", shedErr)
	}
	if ran {
		t.Fatal("expired request ran anyway")
	}
	_ = pts
	e.Close()
}

func TestExecutorPanicIsolation(t *testing.T) {
	tree, pts := buildTree(t, 4, 500, 512)
	defer tree.Close()
	e := NewExecutor(tree, ExecutorConfig{Workers: 2, QueueDepth: 4})
	defer e.Close()

	_, err := e.SearchKNN(context.Background(), pts[0], 5, panicMetric{}, core.Budget{})
	if err == nil || errors.Is(err, ErrShed) {
		t.Fatalf("err = %v, want panic-converted error", err)
	}

	// The worker survived and the read lock was not leaked: a normal query
	// and a mutation both still go through.
	ns, err := e.SearchKNN(context.Background(), pts[1], 5, dist.L2(), core.Budget{})
	if err != nil || len(ns) != 5 {
		t.Fatalf("post-panic query: %v (%d results)", err, len(ns))
	}
	if err := tree.Insert(pts[0], core.RecordID(99999)); err != nil {
		t.Fatalf("post-panic insert (write lock): %v", err)
	}
}

func TestExecutorCloseDrains(t *testing.T) {
	tree, pts := buildTree(t, 4, 500, 512)
	defer tree.Close()
	e := NewExecutor(tree, ExecutorConfig{Workers: 2, QueueDepth: 8})

	const n = 16
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = e.SearchKNN(context.Background(), pts[i], 5, dist.L2(), core.Budget{})
		}(i)
	}
	wg.Wait()
	e.Close()
	for i, err := range errs {
		if err != nil && !errors.Is(err, ErrShed) {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if err := e.Do(context.Background(), func(c *core.QueryContext) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close Do: err = %v, want ErrClosed", err)
	}
	// Close is idempotent.
	e.Close()
}

// TestExecutorNoGoroutineLeak bounds goroutine growth across executor
// lifecycles: everything started by NewExecutor exits by Close.
func TestExecutorNoGoroutineLeak(t *testing.T) {
	tree, pts := buildTree(t, 4, 500, 512)
	defer tree.Close()
	before := runtime.NumGoroutine()
	for round := 0; round < 5; round++ {
		e := NewExecutor(tree, ExecutorConfig{Workers: 4, QueueDepth: 8})
		for i := 0; i < 8; i++ {
			_, _ = e.SearchKNN(context.Background(), pts[i], 3, dist.L2(), core.Budget{})
		}
		e.Close()
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: before %d, after %d", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
		runtime.GC()
	}
}

func TestBatchPanicIsolation(t *testing.T) {
	tree, pts := buildTree(t, 4, 2000, 512)
	defer tree.Close()
	qs := pts[:64]

	// Every query panics via the metric; the batch must return an error
	// yet leave the tree fully usable (no leaked read locks).
	_, err := tree.SearchKNNBatch(qs, 5, panicMetric{})
	if err == nil {
		t.Fatal("panicking batch returned nil error")
	}

	out, err := tree.SearchKNNBatch(qs, 5, dist.L2())
	if err != nil {
		t.Fatalf("post-panic batch: %v", err)
	}
	for i, ns := range out {
		if len(ns) != 5 {
			t.Fatalf("slot %d: %d results", i, len(ns))
		}
	}
	if err := tree.Insert(pts[0], core.RecordID(88888)); err != nil {
		t.Fatalf("post-panic insert: %v", err)
	}
}

func TestExecutorBudgetDegradesThroughStack(t *testing.T) {
	tree, pts := buildTree(t, 6, 3000, 512)
	defer tree.Close()
	e := NewExecutor(tree, ExecutorConfig{Workers: 2, QueueDepth: 4})
	defer e.Close()

	ns, err := e.SearchKNN(context.Background(), pts[0], 10, dist.L2(), core.Budget{MaxPageReads: 3})
	var be *core.ErrBudgetExceeded
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *core.ErrBudgetExceeded", err)
	}
	if len(ns) != be.Partial {
		t.Fatalf("degraded results %d != Partial %d", len(ns), be.Partial)
	}
	for i := 1; i < len(ns); i++ {
		if ns[i].Dist < ns[i-1].Dist {
			t.Fatalf("degraded results unsorted at %d", i)
		}
	}
}

// TestExecutorQueuedDeadlineShedVsClose saturates the queue with requests
// whose deadlines expire while they wait, then races Close against the
// drain. Whatever interleaving the scheduler picks, every submitted task
// must resolve to exactly one verdict — success, its own query error,
// ErrShed (queue full or expired-while-queued), or ErrClosed — and the
// outcome counters must account for every admitted request. Run under
// -race this also proves the submit-vs-close and drain paths share no
// unsynchronized state.
func TestExecutorQueuedDeadlineShedVsClose(t *testing.T) {
	tree, pts := buildTree(t, 4, 500, 512)
	defer tree.Close()

	const rounds = 8
	const submitters = 32
	for round := 0; round < rounds; round++ {
		e := NewExecutor(tree, ExecutorConfig{Workers: 1, QueueDepth: 2})

		// Wedge the worker so the queue saturates and queued deadlines
		// expire behind it.
		block := make(chan struct{})
		started := make(chan struct{})
		var wedged sync.WaitGroup
		wedged.Add(1)
		go func() {
			defer wedged.Done()
			_ = e.Do(context.Background(), func(c *core.QueryContext) error {
				close(started)
				<-block
				return nil
			})
		}()
		<-started

		verdicts := make([]error, submitters)
		delivered := make([]int32, submitters)
		var wg sync.WaitGroup
		for i := 0; i < submitters; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				ctx, cancel := context.WithTimeout(context.Background(), time.Duration(1+i%3)*time.Millisecond)
				defer cancel()
				_, err := e.SearchKNN(ctx, pts[i%len(pts)], 3, dist.L2(), core.Budget{})
				verdicts[i] = err
				atomic.AddInt32(&delivered[i], 1)
			}(i)
		}

		// Let the deadlines lapse while the queue is saturated, then race
		// the unwedge against Close.
		time.Sleep(5 * time.Millisecond)
		var closing sync.WaitGroup
		closing.Add(1)
		go func() {
			defer closing.Done()
			e.Close()
		}()
		close(block)
		wg.Wait()
		closing.Wait()
		wedged.Wait()

		for i := 0; i < submitters; i++ {
			if n := atomic.LoadInt32(&delivered[i]); n != 1 {
				t.Fatalf("round %d: task %d delivered %d verdicts, want exactly 1", round, i, n)
			}
			err := verdicts[i]
			switch {
			case err == nil:
			case errors.Is(err, ErrShed):
			case errors.Is(err, ErrClosed):
			case errors.Is(err, context.DeadlineExceeded):
			default:
				t.Fatalf("round %d: task %d: unexpected verdict %v", round, i, err)
			}
		}
		// Post-close: admission stays shut, no hangs.
		if err := e.Do(context.Background(), func(c *core.QueryContext) error { return nil }); !errors.Is(err, ErrClosed) {
			t.Fatalf("round %d: post-close Do: err = %v, want ErrClosed", round, err)
		}
	}
}
