package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"hybridtree/internal/core"
	"hybridtree/internal/dataset"
	"hybridtree/internal/dist"
	"hybridtree/internal/geom"
	"hybridtree/internal/index"
	"hybridtree/internal/pagefile"
)

// AblationSplitPosition isolates the paper's Section 3.2 claim that
// splitting data nodes near the *middle* of the extent (more cubic BRs,
// smaller surface area) beats the conventional *median* split. Both
// variants use the EDA-optimal split dimension; only the position differs.
func AblationSplitPosition(o Options) (*Figure, error) {
	o = o.withDefaults()
	fig := &Figure{
		Title: "Ablation: data-node split position — middle of extent vs median (COLHIST)",
		XLabel: "dims", YLabel: "avg disk accesses per query",
		Series: []Series{{Label: "middle (paper)"}, {Label: "median"}},
	}
	for _, dim := range ColHistDims {
		data, queries, side, err := colhistWorkload(o, o.ColHistN, dim)
		if err != nil {
			return nil, err
		}
		fig.X = append(fig.X, float64(dim))
		for si, policy := range []core.SplitPolicy{core.EDAPolicy{}, core.EDAMedianPolicy{}} {
			tree, err := BuildHybrid(data, o.PageSize, core.Config{Policy: policy, QuerySide: side})
			if err != nil {
				return nil, err
			}
			m, err := RunBox(tree, queries, 0, 0)
			if err != nil {
				return nil, err
			}
			fig.Series[si].Y = append(fig.Series[si].Y, m.AvgIO)
			o.logf("ablation-pos: dim=%d %s io=%.1f\n", dim, policy.Name(), m.AvgIO)
		}
	}
	return fig, nil
}

// AblationQuerySide isolates the index-node EDA objective's dependence on
// the query-side parameter r (Section 3.3): the calibrated workload side,
// a badly misestimated side, and the uniform-distribution integral form.
func AblationQuerySide(o Options) (*Figure, error) {
	o = o.withDefaults()
	fig := &Figure{
		Title: "Ablation: EDA query-side parameter r for index-node splits (COLHIST)",
		XLabel: "dims", YLabel: "avg disk accesses per query",
		Series: []Series{
			{Label: "calibrated r"},
			{Label: "r=1.0 (overestimate)"},
			{Label: "uniform integral"},
		},
	}
	for _, dim := range ColHistDims {
		data, queries, side, err := colhistWorkload(o, o.ColHistN, dim)
		if err != nil {
			return nil, err
		}
		fig.X = append(fig.X, float64(dim))
		configs := []core.Config{
			{QuerySide: side},
			{QuerySide: 1.0},
			{QuerySide: 1.0, UniformQuerySide: true},
		}
		for si, cfg := range configs {
			tree, err := BuildHybrid(data, o.PageSize, cfg)
			if err != nil {
				return nil, err
			}
			m, err := RunBox(tree, queries, 0, 0)
			if err != nil {
				return nil, err
			}
			fig.Series[si].Y = append(fig.Series[si].Y, m.AvgIO)
			o.logf("ablation-r: dim=%d %s io=%.1f\n", dim, fig.Series[si].Label, m.AvgIO)
		}
	}
	return fig, nil
}

// AblationELSMemory verifies the paper's claim that the ELS side table
// stays small relative to the database (Section 3.4: "for 8K page, 4 bit
// precision and 64-d space, the overhead is less than 1%"). The table
// reports the overhead at our default 4K pages too, where the node count —
// and hence the side table — roughly doubles.
func AblationELSMemory(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		Title:   "ELS side-table memory vs database size (COLHIST)",
		Columns: []string{"dims", "page", "bits", "ELS bytes", "db bytes", "overhead"},
	}
	for _, dim := range ColHistDims {
		data := dataset.ColHist(o.ColHistN, dim, o.Seed)
		for _, pageSize := range []int{o.PageSize, 8192} {
			tree, err := BuildHybrid(data, pageSize, core.Config{})
			if err != nil {
				return nil, err
			}
			// "Database size" in the paper's claim is the index file's
			// footprint: its pages.
			dbBytes := tree.File().NumPages() * pageSize
			for _, bits := range []int{4, 8} {
				if err := tree.SetELSPrecision(bits); err != nil {
					return nil, err
				}
				els := tree.ELSMemoryBytes()
				t.Rows = append(t.Rows, []string{
					itoa(dim), itoa(pageSize), itoa(bits), itoa(els), itoa(dbBytes),
					pct(float64(els) / float64(dbBytes)),
				})
			}
		}
	}
	return t, nil
}

// AblationMmap compares the two read-only serving backends over the same
// on-disk index: pread-per-page (DiskFile) vs a shared read-only memory
// mapping (MmapFile). The index is bulk-loaded once to a temporary file and
// reopened through each backend; logical page reads are identical by
// construction (same tree, same queries), so the delta isolates the read
// path itself. Falls back transparently where mmap is unavailable — the
// "mapped" column records which mode actually ran.
func AblationMmap(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		Title:   "Ablation: read-only serving backend — pread vs mmap (COLHIST)",
		Columns: []string{"dims", "backend", "mapped", "knn CPU/q", "box CPU/q", "avg IO/q"},
	}
	dir, err := os.MkdirTemp("", "hybridbench-mmap")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	const k = 10
	for _, dim := range ColHistDims {
		data, queries, side, err := colhistWorkload(o, o.ColHistN, dim)
		if err != nil {
			return nil, err
		}
		centers := make([]geom.Point, 0, o.Queries)
		for i := 0; i < o.Queries; i++ {
			centers = append(centers, data[(i*7919)%len(data)])
		}
		cfg := core.Config{Dim: dim, PageSize: o.PageSize, QuerySide: side}

		path := filepath.Join(dir, fmt.Sprintf("colhist-%d.ht", dim))
		df, err := pagefile.CreateDiskFile(path, o.PageSize)
		if err != nil {
			return nil, err
		}
		rids := make([]core.RecordID, len(data))
		for i := range rids {
			rids[i] = core.RecordID(i)
		}
		built, err := core.BulkLoad(df, cfg, data, rids)
		if err != nil {
			return nil, err
		}
		if err := built.Close(); err != nil {
			return nil, err
		}
		if err := df.Close(); err != nil {
			return nil, err
		}

		type backend struct {
			name string
			open func() (pagefile.File, error)
		}
		backends := []backend{
			{"disk", func() (pagefile.File, error) { return pagefile.OpenDiskFile(path, o.PageSize) }},
			{"mmap", func() (pagefile.File, error) { return pagefile.OpenMmapFile(path, o.PageSize) }},
		}
		var knnResults, boxResults []float64
		for _, be := range backends {
			file, err := be.open()
			if err != nil {
				return nil, err
			}
			tree, err := core.Open(file, cfg)
			if err != nil {
				file.Close()
				return nil, err
			}
			idx := &index.Hybrid{Tree: tree}
			// Warm pass decodes every touched page once, so the timed pass
			// measures the steady-state read path rather than cold decodes.
			if _, err := RunKNN(idx, centers, k, dist.L2(), 0, 0); err != nil {
				file.Close()
				return nil, err
			}
			tree.DropCaches()
			knn, err := RunKNN(idx, centers, k, dist.L2(), 0, 0)
			if err != nil {
				file.Close()
				return nil, err
			}
			tree.DropCaches()
			box, err := RunBox(idx, queries, 0, 0)
			if err != nil {
				file.Close()
				return nil, err
			}
			mapped := "-"
			if mf, ok := file.(*pagefile.MmapFile); ok {
				mapped = fmt.Sprintf("%v", mf.Mapped())
			}
			knnResults = append(knnResults, knn.AvgResults)
			boxResults = append(boxResults, box.AvgResults)
			t.Rows = append(t.Rows, []string{
				itoa(dim), be.name, mapped,
				knn.AvgCPU.Round(time.Microsecond).String(),
				box.AvgCPU.Round(time.Microsecond).String(),
				fmt.Sprintf("%.1f", knn.AvgIO+box.AvgIO),
			})
			o.logf("ablation-mmap: dim=%d %s knn=%v box=%v\n", dim, be.name, knn.AvgCPU, box.AvgCPU)
			if err := file.Close(); err != nil {
				return nil, err
			}
		}
		if knnResults[0] != knnResults[1] || boxResults[0] != boxResults[1] {
			return nil, fmt.Errorf("bench: mmap backend disagrees with disk at dim %d (knn %v vs %v, box %v vs %v)",
				dim, knnResults[0], knnResults[1], boxResults[0], boxResults[1])
		}
	}
	return t, nil
}

func itoa(v int) string { return fmt.Sprintf("%d", v) }

func pct(f float64) string { return fmt.Sprintf("%.3f%%", 100*f) }

// AblationBulkLoad compares bulk loading against incremental insertion on
// COLHIST: construction cost, storage utilization, and query I/O. Bulk
// loading is the natural companion of the VAMSplit lineage the paper cites;
// the ablation quantifies what the dynamic tree gives up for being fully
// incremental.
func AblationBulkLoad(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		Title:   "Ablation: bulk load vs incremental insertion (COLHIST)",
		Columns: []string{"dims", "build", "build time", "data fill", "avg IO/query"},
	}
	for _, dim := range ColHistDims {
		data, queries, side, err := colhistWorkload(o, o.ColHistN, dim)
		if err != nil {
			return nil, err
		}
		run := func(name string, build func() (*index.Hybrid, time.Duration, error)) error {
			tree, elapsed, err := build()
			if err != nil {
				return err
			}
			st, err := tree.Tree.Stats()
			if err != nil {
				return err
			}
			m, err := RunBox(tree, queries, 0, 0)
			if err != nil {
				return err
			}
			t.Rows = append(t.Rows, []string{
				itoa(dim), name, elapsed.Round(time.Millisecond).String(),
				pct(st.AvgDataFill), fmt.Sprintf("%.1f", m.AvgIO),
			})
			return nil
		}
		err = run("incremental", func() (*index.Hybrid, time.Duration, error) {
			start := time.Now()
			tree, err := BuildHybrid(data, o.PageSize, core.Config{QuerySide: side})
			return tree, time.Since(start), err
		})
		if err != nil {
			return nil, err
		}
		err = run("bulk", func() (*index.Hybrid, time.Duration, error) {
			rids := make([]core.RecordID, len(data))
			for i := range rids {
				rids[i] = core.RecordID(i)
			}
			start := time.Now()
			file := pagefile.NewMemFile(o.PageSize)
			tree, err := core.BulkLoad(file, core.Config{Dim: dim, PageSize: o.PageSize, QuerySide: side}, data, rids)
			if err != nil {
				return nil, 0, err
			}
			return &index.Hybrid{Tree: tree, NameOverride: "hybrid-bulk"}, time.Since(start), nil
		})
		if err != nil {
			return nil, err
		}
	}
	return t, nil
}


// AblationDPFamily compares the two data-partitioning structures the paper
// names — the SR-tree it benchmarks and the X-tree its classification cites
// — against the hybrid tree on COLHIST box queries. The X-tree's supernodes
// avoid overlapping directory splits at the price of multi-page directory
// reads; the audit reports both.
func AblationDPFamily(o Options) (*Table, error) {
	o = o.withDefaults()
	if o.ColHistN > 20000 {
		// X-tree supernodes make inserts O(chain) page rewrites; the
		// comparison needs structure, not scale.
		o.ColHistN = 20000
	}
	t := &Table{
		Title:   "Ablation: DP family (SR-tree, X-tree) vs hybrid tree (COLHIST)",
		Columns: []string{"dims", "method", "norm IO", "avg IO/query", "notes"},
	}
	for _, dim := range ColHistDims {
		data, queries, side, err := colhistWorkload(o, o.ColHistN, dim)
		if err != nil {
			return nil, err
		}
		scan, err := BuildScan(data, o.PageSize)
		if err != nil {
			return nil, err
		}
		hybrid, err := BuildHybrid(data, o.PageSize, core.Config{QuerySide: side})
		if err != nil {
			return nil, err
		}
		sr, err := BuildSR(data, o.PageSize)
		if err != nil {
			return nil, err
		}
		xt, err := BuildX(data, o.PageSize)
		if err != nil {
			return nil, err
		}
		xst, err := xt.Stats()
		if err != nil {
			return nil, err
		}
		for _, idx := range []index.Index{hybrid, sr, xt} {
			m, err := RunBox(idx, queries, scan.NumPages(), 0)
			if err != nil {
				return nil, err
			}
			note := ""
			if idx.Name() == "x" {
				note = fmt.Sprintf("%d supernodes, %d chain pages", xst.Supernodes, xst.ChainPages)
			}
			t.Rows = append(t.Rows, []string{
				itoa(dim), idx.Name(), fmt.Sprintf("%.4f", m.NormIO),
				fmt.Sprintf("%.1f", m.AvgIO), note,
			})
		}
	}
	return t, nil
}
