// Package perf is the benchmark trajectory pipeline: a versioned,
// machine-readable snapshot of benchmark results with an environment
// fingerprint, plus a noise-aware comparator that turns a (baseline,
// current) snapshot pair into gate/warn findings. CI emits one snapshot per
// run as an artifact and fails the build when a gated regression shows up
// against the committed baseline — the same mechanism, with the same rule
// table, replaces the bespoke mixed-workload, leaf-scan and tracer-overhead
// gate tests that previously each hand-rolled their own thresholds.
package perf

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"

	"hybridtree/internal/obs"
)

// SchemaVersion is the current snapshot schema. Readers reject snapshots
// from a different major schema rather than mis-interpreting fields.
const SchemaVersion = 1

// Env fingerprints the machine and build a snapshot was measured on.
// Comparisons between snapshots from different machines downgrade
// wall-clock gates to warnings (see Compare); allocation counts compare
// across machines unconditionally.
type Env struct {
	Commit     string `json:"commit"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	CPUModel   string `json:"cpu_model,omitempty"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// SameMachine reports whether two fingerprints plausibly describe the same
// hardware class, i.e. whether nanosecond readings are comparable.
func (e Env) SameMachine(o Env) bool {
	return e.GOOS == o.GOOS && e.GOARCH == o.GOARCH && e.CPUModel == o.CPUModel && e.NumCPU == o.NumCPU
}

// Stat summarizes the repeats of one metric. Median is the comparison
// value; P10/P90 bound the observed spread so a human reading the artifact
// can judge noise.
type Stat struct {
	Median float64 `json:"median"`
	P10    float64 `json:"p10,omitempty"`
	P90    float64 `json:"p90,omitempty"`
}

// Benchmark is one benchmark's aggregated results: its canonical name
// (package-qualified, Benchmark prefix and GOMAXPROCS suffix stripped, e.g.
// "internal/bench.Mixed90R10W/mvcc"), how many repeats contributed, and a
// Stat per reported metric ("ns/op", "allocs/op", "B/op", plus any custom
// b.ReportMetric units such as "read_qps").
type Benchmark struct {
	Name    string          `json:"name"`
	Repeats int             `json:"repeats"`
	Metrics map[string]Stat `json:"metrics"`
}

// Snapshot is one benchmark run rendered machine-readable: the schema
// version, where it ran, and what it measured.
type Snapshot struct {
	SchemaVersion int         `json:"schema_version"`
	Env           Env         `json:"env"`
	Benchmarks    []Benchmark `json:"benchmarks"`
}

// CaptureEnv fingerprints the current process: VCS commit and toolchain from
// the build info, platform from the runtime, CPU model from the OS.
func CaptureEnv() Env {
	commit, goVersion := obs.BuildVersion()
	return Env{
		Commit:     commit,
		GoVersion:  goVersion,
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUModel:   cpuModel(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

// cpuModel returns the CPU model string, best-effort: /proc/cpuinfo on
// Linux, empty elsewhere (the fingerprint then keys on GOOS/GOARCH/NumCPU).
func cpuModel() string {
	f, err := os.Open("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if k, v, ok := strings.Cut(line, ":"); ok {
			switch strings.TrimSpace(k) {
			case "model name", "Processor", "cpu model":
				return strings.TrimSpace(v)
			}
		}
	}
	return ""
}

// NewSnapshot assembles a current-schema snapshot of benchmarks measured in
// this process's environment, sorted by name for diff-stable artifacts.
func NewSnapshot(benchmarks []Benchmark) *Snapshot {
	sort.Slice(benchmarks, func(i, j int) bool { return benchmarks[i].Name < benchmarks[j].Name })
	return &Snapshot{SchemaVersion: SchemaVersion, Env: CaptureEnv(), Benchmarks: benchmarks}
}

// Validate checks structural invariants: current schema, a non-empty
// fingerprint, at least minBench distinct benchmarks, and every benchmark
// carrying at least one metric with at least one repeat.
func (s *Snapshot) Validate(minBench int) error {
	if s.SchemaVersion != SchemaVersion {
		return fmt.Errorf("perf: snapshot schema %d, want %d", s.SchemaVersion, SchemaVersion)
	}
	if s.Env.GOOS == "" || s.Env.GOARCH == "" || s.Env.GoVersion == "" {
		return fmt.Errorf("perf: snapshot env fingerprint incomplete: %+v", s.Env)
	}
	if len(s.Benchmarks) < minBench {
		return fmt.Errorf("perf: snapshot has %d benchmarks, want >= %d", len(s.Benchmarks), minBench)
	}
	seen := make(map[string]bool, len(s.Benchmarks))
	for _, b := range s.Benchmarks {
		if b.Name == "" {
			return fmt.Errorf("perf: benchmark with empty name")
		}
		if seen[b.Name] {
			return fmt.Errorf("perf: duplicate benchmark %q", b.Name)
		}
		seen[b.Name] = true
		if b.Repeats < 1 {
			return fmt.Errorf("perf: benchmark %q has %d repeats", b.Name, b.Repeats)
		}
		if len(b.Metrics) == 0 {
			return fmt.Errorf("perf: benchmark %q has no metrics", b.Name)
		}
	}
	return nil
}

// Lookup returns the named benchmark, or nil.
func (s *Snapshot) Lookup(name string) *Benchmark {
	for i := range s.Benchmarks {
		if s.Benchmarks[i].Name == name {
			return &s.Benchmarks[i]
		}
	}
	return nil
}

// Metric returns the named benchmark's stat for metric, if both exist.
func (s *Snapshot) Metric(bench, metric string) (Stat, bool) {
	b := s.Lookup(bench)
	if b == nil {
		return Stat{}, false
	}
	st, ok := b.Metrics[metric]
	return st, ok
}

// WriteFile renders the snapshot as indented JSON at path.
func (s *Snapshot) WriteFile(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile loads and structurally checks (schema version only — callers pick
// their own minBench) a snapshot from path.
func ReadFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("perf: %s: %w", path, err)
	}
	if s.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("perf: %s: schema %d, want %d", path, s.SchemaVersion, SchemaVersion)
	}
	return &s, nil
}
