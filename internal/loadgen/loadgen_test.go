package loadgen

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
)

// TestGenRequestDeterministic: the schedule is a pure function of (seed,
// index) — reruns and goroutine interleavings cannot change it.
func TestGenRequestDeterministic(t *testing.T) {
	cfg := Config{Seed: 99, Dim: 5, Mix: Mix{KNN: 1, Box: 1, Range: 1, Insert: 1, Delete: 1}}.withDefaults()
	for i := 0; i < 200; i++ {
		a, b := genRequest(cfg, i), genRequest(cfg, i)
		if a.path != b.path || !bytes.Equal(a.body, b.body) {
			t.Fatalf("request %d not deterministic: %s %s vs %s %s", i, a.path, a.body, b.path, b.body)
		}
	}
	// A different seed produces a different storm.
	other := cfg
	other.Seed = 100
	same := 0
	for i := 0; i < 200; i++ {
		if bytes.Equal(genRequest(cfg, i).body, genRequest(other, i).body) {
			same++
		}
	}
	if same == 200 {
		t.Fatal("seed does not influence the schedule")
	}
}

// TestReportCheck exercises each invariant branch.
func TestReportCheck(t *testing.T) {
	ok := &Report{Sent: 3, Status: map[int]int{200: 2, 503: 1},
		Outcomes: map[string]int{"ok": 2, "shed": 1}}
	if err := ok.Check(true); err != nil {
		t.Fatalf("clean report rejected: %v", err)
	}
	bad := []*Report{
		{Sent: 1, Status: map[int]int{418: 1}, Outcomes: map[string]int{"ok": 1}},   // unmapped status
		{Sent: 1, Status: map[int]int{200: 1}, MissingOutcome: 1},                   // missing header
		{Sent: 2, Status: map[int]int{200: 2}, Outcomes: map[string]int{"ok": 1}},   // tally mismatch
		{Sent: 5, Status: map[int]int{200: 2}, Outcomes: map[string]int{"ok": 2}},   // sent != resolved
		{Sent: 2, Status: map[int]int{200: 2}, Outcomes: map[string]int{"ok": 2}},   // no shed under expectShed
		{Sent: 2, Status: map[int]int{503: 2}, Outcomes: map[string]int{"shed": 2}}, // drowned under expectShed
	}
	for i, r := range bad {
		if err := r.Check(true); err == nil {
			t.Errorf("bad report %d passed Check", i)
		}
	}
}

// TestRunOpenLoop fires a small storm at a stub server and checks the
// tallies close: sent == responses, outcome header counted per response.
func TestRunOpenLoop(t *testing.T) {
	var hits atomic.Int64
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("X-Htree-Outcome", "ok")
		w.WriteHeader(http.StatusOK)
	}))
	defer stub.Close()

	rep, err := Run(context.Background(), Config{
		BaseURL:  stub.URL,
		Seed:     1,
		Dim:      3,
		Requests: 60,
		Rate:     5000,
		Mix:      Mix{KNN: 1, Box: 1, Range: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent != 60 || rep.Responses() != 60 || rep.TransportErrors != 0 {
		t.Fatalf("sent=%d responses=%d transport=%d, want 60/60/0",
			rep.Sent, rep.Responses(), rep.TransportErrors)
	}
	if got := hits.Load(); got != 60 {
		t.Fatalf("stub saw %d requests, want 60", got)
	}
	if rep.Outcomes["ok"] != 60 {
		t.Fatalf("outcomes %v, want ok=60", rep.Outcomes)
	}
	if err := rep.Check(false); err != nil {
		t.Fatal(err)
	}
}
