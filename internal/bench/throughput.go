package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hybridtree/internal/concurrent"
	"hybridtree/internal/core"
	"hybridtree/internal/dist"
	"hybridtree/internal/geom"
	"hybridtree/internal/pagefile"
)

// KNNSearcher is the read-side interface the throughput runner drives; both
// the read-parallel concurrent.Tree and the single-mutex baseline satisfy
// it.
type KNNSearcher interface {
	SearchKNN(q geom.Point, k int, m dist.Metric) ([]core.Neighbor, error)
}

// BoxSearcher is the box-query counterpart of KNNSearcher.
type BoxSearcher interface {
	SearchBox(q geom.Rect) ([]core.Entry, error)
}

// SerialTree is the pre-read-parallel baseline: every operation, searches
// included, serialized behind one exclusive mutex — exactly what
// concurrent.Tree was before the parallel read path. It exists so the
// throughput benchmarks can measure what the reader/writer lock buys.
type SerialTree struct {
	mu   sync.Mutex
	tree *core.Tree
}

// NewSerialTree wraps t behind a single exclusive mutex. The caller must
// not use t directly afterwards.
func NewSerialTree(t *core.Tree) *SerialTree { return &SerialTree{tree: t} }

// SearchKNN serializes core.Tree.SearchKNN behind the single mutex.
func (s *SerialTree) SearchKNN(q geom.Point, k int, m dist.Metric) ([]core.Neighbor, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tree.SearchKNN(q, k, m)
}

// SearchBox serializes core.Tree.SearchBox behind the single mutex.
func (s *SerialTree) SearchBox(q geom.Rect) ([]core.Entry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tree.SearchBox(q)
}

// DropCaches discards the decoded-node cache under the mutex (cold-read
// benchmarks).
func (s *SerialTree) DropCaches() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tree.DropCaches()
}

// ThroughputResult is one (searcher, worker-count) throughput measurement.
type ThroughputResult struct {
	Workers int
	Queries int
	Elapsed time.Duration
	QPS     float64
}

// RunKNNThroughput fans the query slice across workers goroutines, each
// pulling the next query from a shared counter, and reports wall-clock
// queries/sec. With workers == 1 it degenerates to a sequential loop.
func RunKNNThroughput(s KNNSearcher, queries []geom.Point, k int, m dist.Metric, workers int) (ThroughputResult, error) {
	if workers < 1 {
		workers = 1
	}
	return runThroughput(len(queries), workers, func(i int) error {
		_, err := s.SearchKNN(queries[i], k, m)
		return err
	})
}

// RunBoxThroughput is RunKNNThroughput for box queries.
func RunBoxThroughput(s BoxSearcher, queries []geom.Rect, workers int) (ThroughputResult, error) {
	if workers < 1 {
		workers = 1
	}
	return runThroughput(len(queries), workers, func(i int) error {
		_, err := s.SearchBox(queries[i])
		return err
	})
}

func runThroughput(n, workers int, do func(i int) error) (ThroughputResult, error) {
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := do(i); err != nil {
					errOnce.Do(func() { firstErr = err })
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return ThroughputResult{}, firstErr
	}
	qps := 0.0
	if elapsed > 0 {
		qps = float64(n) / elapsed.Seconds()
	}
	return ThroughputResult{Workers: workers, Queries: n, Elapsed: elapsed, QPS: qps}, nil
}

// ThroughputFixture is a built index exposed both ways — read-parallel and
// single-mutex — over the same underlying tree pages, plus a query batch.
type ThroughputFixture struct {
	Parallel *concurrent.Tree
	Serial   *SerialTree
	Queries  []geom.Point
	Boxes    []geom.Rect
	Dim      int
}

// NewThroughputFixture builds a uniform random dataset of n dim-d points
// on two identical in-memory trees (one per wrapper, so the two paths
// never share cache state) and derives numQueries query centers and boxes
// from the data distribution.
func NewThroughputFixture(n, dim, numQueries, pageSize int, seed int64) (*ThroughputFixture, error) {
	return newThroughputFixture(n, dim, numQueries, pageSize, seed, 0)
}

// NewThroughputFixtureIO is NewThroughputFixture over page files that
// sleep readDelay per page read — the paper's disk-access-bound regime,
// where concurrent readers overlap their waits. Builds stay fast because
// construction works against the write-through node cache.
func NewThroughputFixtureIO(n, dim, numQueries, pageSize int, seed int64, readDelay time.Duration) (*ThroughputFixture, error) {
	return newThroughputFixture(n, dim, numQueries, pageSize, seed, readDelay)
}

func newThroughputFixture(n, dim, numQueries, pageSize int, seed int64, readDelay time.Duration) (*ThroughputFixture, error) {
	rng := newSplitMix(uint64(seed))
	data := make([]geom.Point, n)
	for i := range data {
		p := make(geom.Point, dim)
		for d := range p {
			p[d] = rng.float32()
		}
		data[i] = p
	}
	build := func() (*core.Tree, error) {
		var file pagefile.File = pagefile.NewMemFile(pageSize)
		if readDelay > 0 {
			file = pagefile.WithLatency(file, readDelay)
		}
		tree, err := core.New(file, core.Config{Dim: dim, PageSize: pageSize})
		if err != nil {
			return nil, err
		}
		for i, p := range data {
			if err := tree.Insert(p, core.RecordID(i)); err != nil {
				return nil, fmt.Errorf("insert %d: %w", i, err)
			}
		}
		return tree, nil
	}
	parallelTree, err := build()
	if err != nil {
		return nil, fmt.Errorf("bench: build parallel fixture: %w", err)
	}
	serialTree, err := build()
	if err != nil {
		return nil, fmt.Errorf("bench: build serial fixture: %w", err)
	}
	f := &ThroughputFixture{
		Parallel: concurrent.Wrap(parallelTree),
		Serial:   NewSerialTree(serialTree),
		Dim:      dim,
	}
	for i := 0; i < numQueries; i++ {
		c := data[int(rng.next()%uint64(n))]
		f.Queries = append(f.Queries, c.Clone())
		lo, hi := make(geom.Point, dim), make(geom.Point, dim)
		for d := 0; d < dim; d++ {
			lo[d], hi[d] = c[d]-0.05, c[d]+0.05
		}
		f.Boxes = append(f.Boxes, geom.Rect{Lo: lo, Hi: hi})
	}
	return f, nil
}

// splitMix is a tiny deterministic PRNG (splitmix64) so the fixture does
// not depend on math/rand's global state.
type splitMix struct{ state uint64 }

func newSplitMix(seed uint64) *splitMix { return &splitMix{state: seed} }

func (s *splitMix) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *splitMix) float32() float32 {
	return float32(s.next()>>40) / float32(1<<24)
}
