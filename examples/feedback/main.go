// Feedback: relevance-feedback retrieval — the scenario the paper cites as
// the key reason an index must support *arbitrary* distance functions
// (Section 3.5): in systems like MARS/MindReader the distance function
// changes between iterations of the same query as the user marks results
// relevant or not. Distance-based structures (SS-tree, M-tree) bake one
// metric into the tree; the hybrid tree, being feature-based, serves every
// iteration's new metric from the same index.
//
// The loop below simulates a user searching for images of one scene type:
// each round re-derives per-dimension weights from the relevant results so
// far (standard deviation re-weighting, as in MARS) and re-queries the same
// tree with the new weighted metric.
package main

import (
	"fmt"
	"log"
	"math"

	"hybridtree/internal/core"
	"hybridtree/internal/dataset"
	"hybridtree/internal/dist"
	"hybridtree/internal/geom"
	"hybridtree/internal/pagefile"
)

func main() {
	const dim = 32
	const n = 20000

	data := dataset.ColHist(n, dim, 11)
	file := pagefile.NewMemFile(pagefile.DefaultPageSize)
	tree, err := core.New(file, core.Config{Dim: dim})
	if err != nil {
		log.Fatal(err)
	}
	for i, p := range data {
		if err := tree.Insert(p, core.RecordID(i)); err != nil {
			log.Fatal(err)
		}
	}

	// The "ground truth" the simulated user wants: images whose histogram
	// is close to a target scene under L1. The user recognizes them on
	// sight; the system must learn the metric.
	target := data[123]
	isRelevant := func(p geom.Point) bool {
		return dist.L1().Distance(target, p) < 0.25
	}

	// The user's first attempt is imperfect: a distorted memory of the
	// scene. Rounds of feedback must recover the true neighborhood.
	query := target.Clone()
	for d := 0; d < dim; d += 3 {
		query[d] = query[d] * 0.4
	}
	var metric dist.Metric = dist.L2() // iteration 1: default metric
	var relevant []geom.Point

	for round := 1; round <= 4; round++ {
		stats := file.Stats()
		stats.Reset()
		results, err := tree.SearchKNN(query, 20, metric)
		if err != nil {
			log.Fatal(err)
		}
		hits := 0
		relevant = relevant[:0]
		for _, nb := range results {
			if isRelevant(nb.Point) {
				hits++
				relevant = append(relevant, nb.Point)
			}
		}
		fmt.Printf("round %d (%-4s): precision@20 = %2d/20, %d page reads\n",
			round, metric.Name(), hits, stats.Reads())
		if len(relevant) < 2 {
			fmt.Println("  not enough feedback to re-weight; stopping")
			break
		}

		// MARS-style re-weighting: dimensions on which the relevant set
		// agrees (low spread) get high weight. The new metric is handed to
		// the *same* tree on the next round — no rebuild, no side index.
		weights := make([]float64, dim)
		for d := 0; d < dim; d++ {
			var sum, sumSq float64
			for _, p := range relevant {
				v := float64(p[d])
				sum += v
				sumSq += v * v
			}
			m := sum / float64(len(relevant))
			variance := sumSq/float64(len(relevant)) - m*m
			weights[d] = 1.0 / (0.02 + math.Sqrt(variance))
		}
		wm, err := dist.NewWeightedLp(1, weights)
		if err != nil {
			log.Fatal(err)
		}
		metric = wm

		// The query point also drifts toward the relevant centroid
		// (Rocchio-style).
		query = geom.Centroid(relevant)
	}
}
