package core

import (
	"fmt"
	"strings"

	"hybridtree/internal/geom"
	"hybridtree/internal/obs"
)

// Explanation describes how a box query traversed the tree: per level, how
// many nodes were read and how candidate children were disposed of — pruned
// by the kd-defined bounding region, pruned by the encoded live space
// (the second step of the paper's two-step overlap check), or descended
// into. It makes the ELS and split-quality effects measured in Figures 5
// and 6 inspectable for a single query.
//
// The per-level table is an aggregation of the query's span tree, which
// Trace exposes in full: the same obs.Trace the Tracer interface produces,
// with one span per visited node. Trace.String() is the per-node human
// renderer and json.Marshal(Trace) the machine one; Explanation.String()
// stays the per-level summary.
type Explanation struct {
	// Levels[0] is the root level; the last entry is the data level.
	Levels []LevelStats
	// Results is the number of matching entries.
	Results int
	// Trace is the query's full span tree.
	Trace *obs.Trace
}

// LevelStats aggregates one tree level of an explained query.
type LevelStats struct {
	NodesRead  int // nodes of this level read
	KDPruned   int // subtrees cut by the kd bounding-region check
	ELSPruned  int // children cut by the live-space check after kd passed
	Descended  int // children visited at the next level
	EntriesHit int // data level only: entries matching the query
}

// String renders the explanation as a small table.
func (e *Explanation) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "level  nodes  kd-pruned  els-pruned  descended  hits\n")
	for i, l := range e.Levels {
		fmt.Fprintf(&sb, "%5d %6d %10d %11d %10d %5d\n",
			i, l.NodesRead, l.KDPruned, l.ELSPruned, l.Descended, l.EntriesHit)
	}
	fmt.Fprintf(&sb, "results: %d\n", e.Results)
	return sb.String()
}

// ExplainBox runs a box query and returns both its results and the
// traversal explanation. It is the ordinary box-query loop run with a
// locally-owned trace — the one traversal has one instrumentation
// mechanism, whether the consumer is a Tracer sink or this aggregation.
func (t *Tree) ExplainBox(q geom.Rect) ([]Entry, *Explanation, error) {
	if q.Dim() != t.cfg.Dim {
		return nil, nil, fmt.Errorf("core: query has dim %d, tree expects %d", q.Dim(), t.cfg.Dim)
	}
	c := t.getCtx()
	defer t.putCtx(c)
	qc := &c.qc
	qc.acquire(t.cfg.Dim)
	defer qc.release()
	ver := t.pinCtx(qc)

	qc.tally = tally{}
	tr := obs.NewTrace("box")
	qc.tr = tr
	out, err := t.runBox(qc, q, nil)
	t.finishQuery(qc, opBox, tr.Start, len(out), err)

	ex := explanationFromTrace(tr, ver.height)
	ex.Results = len(out)
	return out, ex, err
}

// explanationFromTrace collapses a span tree into per-level totals. Kd and
// live-space prunes and descents are charged to the level of the node where
// the decision happened (matching the span's own counters); entry hits are
// charged to leaf spans, which sit on the data level.
func explanationFromTrace(tr *obs.Trace, height int) *Explanation {
	ex := &Explanation{Levels: make([]LevelStats, height), Trace: tr}
	for i := range tr.Spans {
		s := &tr.Spans[i]
		for int(s.Level) >= len(ex.Levels) {
			// Defensive: stale height after concurrent-looking misuse; grow.
			ex.Levels = append(ex.Levels, LevelStats{})
		}
		ls := &ex.Levels[s.Level]
		ls.NodesRead++
		ls.KDPruned += int(s.KDPruned)
		ls.ELSPruned += int(s.ELSPruned)
		ls.Descended += int(s.Descents)
		if s.Leaf {
			ls.EntriesHit += int(s.Hits)
		}
	}
	return ex
}
