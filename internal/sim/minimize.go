package sim

import "errors"

// Replay runs one access method over an explicit trace (rather than
// generating one from cfg.Trace). It is the replay half of the
// fail-with-a-reproducer contract: feed it the seed's trace truncated at
// the divergence, or a minimized trace, and it reproduces the failure.
func Replay(cfg Config, name string, trace []Op) (IndexReport, error) {
	cfg = cfg.withDefaults()
	return runIndex(cfg, name, trace)
}

// failsWith reports whether the trace still produces a differential
// divergence (not an infrastructure error) for the named index.
func failsWith(cfg Config, name string, trace []Op) bool {
	_, err := runIndex(cfg, name, trace)
	var d *Divergence
	return errors.As(err, &d)
}

// Minimize shrinks a failing trace with bounded delta-debugging: it
// repeatedly removes chunks, keeping any candidate that still diverges.
// The fault schedule is positional, so removing ops shifts which
// operations draw which faults — every candidate is re-run from scratch
// and kept only if it actually still fails. budget caps the number of
// re-runs (<=0 means a default of 60). The input trace is not modified.
func Minimize(cfg Config, name string, trace []Op, budget int) []Op {
	cfg = cfg.withDefaults()
	return minimizeWith(func(t []Op) bool { return failsWith(cfg, name, t) }, trace, budget)
}

// minimizeWith is the ddmin core over an arbitrary failure predicate.
func minimizeWith(fails func([]Op) bool, trace []Op, budget int) []Op {
	if budget <= 0 {
		budget = 60
	}
	cur := append([]Op(nil), trace...)
	if !fails(cur) {
		return cur // not reproducible as given; nothing to shrink
	}
	budget--

	chunks := 2
	for chunks <= len(cur) && budget > 0 {
		size := (len(cur) + chunks - 1) / chunks
		shrunk := false
		for start := 0; start < len(cur) && budget > 0; start += size {
			end := start + size
			if end > len(cur) {
				end = len(cur)
			}
			cand := make([]Op, 0, len(cur)-(end-start))
			cand = append(cand, cur[:start]...)
			cand = append(cand, cur[end:]...)
			if len(cand) == 0 {
				continue
			}
			budget--
			if fails(cand) {
				cur = cand
				shrunk = true
				break // chunk boundaries moved; restart the scan
			}
		}
		if !shrunk {
			if size == 1 {
				break
			}
			chunks *= 2
		} else {
			chunks = 2
		}
	}
	return cur
}
