// Package geom provides the low-level geometric primitives shared by every
// index structure in this repository: k-dimensional points, axis-aligned
// rectangles (bounding regions, "BRs" in the paper's terminology), and the
// operations the hybrid tree's cost model is built on — extents, enlargement,
// Minkowski sums and overlap volumes.
//
// Coordinates are float32 (the on-disk representation); aggregate quantities
// such as areas and probabilities are computed in float64.
package geom

import (
	"fmt"
	"math"
	"strings"
)

// Point is a k-dimensional feature vector.
type Point []float32

// Clone returns a copy of p.
func (p Point) Clone() Point {
	q := make(Point, len(p))
	copy(q, p)
	return q
}

// Equal reports whether p and q are identical vectors.
func (p Point) Equal(q Point) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// String formats the point for diagnostics.
func (p Point) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range p {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%g", v)
	}
	b.WriteByte(')')
	return b.String()
}

// Rect is a k-dimensional axis-aligned rectangle (a bounding region).
// Lo and Hi are the inclusive lower and upper corners; len(Lo) == len(Hi)
// is the dimensionality.
type Rect struct {
	Lo, Hi Point
}

// NewRect returns a rectangle with the given corners. It panics if the
// corners disagree in dimensionality or are inverted; geometry bugs should
// fail loudly rather than corrupt an index.
func NewRect(lo, hi Point) Rect {
	if len(lo) != len(hi) {
		panic(fmt.Sprintf("geom: corner dimensionality mismatch %d vs %d", len(lo), len(hi)))
	}
	for d := range lo {
		if lo[d] > hi[d] {
			panic(fmt.Sprintf("geom: inverted rect on dim %d: lo=%g hi=%g", d, lo[d], hi[d]))
		}
	}
	return Rect{Lo: lo, Hi: hi}
}

// UnitCube returns the [0,1]^dim rectangle, the normalized data space the
// paper's cost model assumes.
func UnitCube(dim int) Rect {
	lo := make(Point, dim)
	hi := make(Point, dim)
	for d := range hi {
		hi[d] = 1
	}
	return Rect{Lo: lo, Hi: hi}
}

// EmptyRect returns the canonical empty rectangle of the given
// dimensionality: an inverted rect that acts as the identity for Union and
// Enlarge. Test emptiness with IsEmpty.
func EmptyRect(dim int) Rect {
	lo := make(Point, dim)
	hi := make(Point, dim)
	for d := 0; d < dim; d++ {
		lo[d] = float32(math.Inf(1))
		hi[d] = float32(math.Inf(-1))
	}
	return Rect{Lo: lo, Hi: hi}
}

// IsEmpty reports whether r is an empty (identity) rectangle.
func (r Rect) IsEmpty() bool {
	for d := range r.Lo {
		if r.Lo[d] > r.Hi[d] {
			return true
		}
	}
	return len(r.Lo) == 0
}

// Dim returns the dimensionality of r.
func (r Rect) Dim() int { return len(r.Lo) }

// Clone returns a deep copy of r.
func (r Rect) Clone() Rect {
	return Rect{Lo: r.Lo.Clone(), Hi: r.Hi.Clone()}
}

// Extent returns the side length of r along dimension d.
func (r Rect) Extent(d int) float64 {
	return float64(r.Hi[d]) - float64(r.Lo[d])
}

// MaxExtentDim returns the dimension along which r is widest — the hybrid
// tree's EDA-optimal split dimension for data nodes (Section 3.2 of the
// paper). Ties resolve to the lowest dimension for determinism.
func (r Rect) MaxExtentDim() int {
	best, bestExt := 0, math.Inf(-1)
	for d := 0; d < r.Dim(); d++ {
		if e := r.Extent(d); e > bestExt {
			best, bestExt = d, e
		}
	}
	return best
}

// Contains reports whether p lies inside r (boundaries inclusive).
func (r Rect) Contains(p Point) bool {
	for d := range p {
		if p[d] < r.Lo[d] || p[d] > r.Hi[d] {
			return false
		}
	}
	return true
}

// ContainsRect reports whether s lies entirely inside r.
func (r Rect) ContainsRect(s Rect) bool {
	for d := range r.Lo {
		if s.Lo[d] < r.Lo[d] || s.Hi[d] > r.Hi[d] {
			return false
		}
	}
	return true
}

// Intersects reports whether r and s share at least one point
// (boundaries inclusive).
func (r Rect) Intersects(s Rect) bool {
	for d := range r.Lo {
		if r.Lo[d] > s.Hi[d] || r.Hi[d] < s.Lo[d] {
			return false
		}
	}
	return true
}

// Intersect returns the geometric intersection of r and s. If they are
// disjoint the result is empty (IsEmpty reports true).
func (r Rect) Intersect(s Rect) Rect {
	out := Rect{Lo: make(Point, r.Dim()), Hi: make(Point, r.Dim())}
	for d := range r.Lo {
		out.Lo[d] = maxf(r.Lo[d], s.Lo[d])
		out.Hi[d] = minf(r.Hi[d], s.Hi[d])
	}
	return out
}

// Union returns the smallest rectangle covering both r and s. Empty
// rectangles act as the identity.
func (r Rect) Union(s Rect) Rect {
	out := Rect{Lo: make(Point, r.Dim()), Hi: make(Point, r.Dim())}
	for d := range r.Lo {
		out.Lo[d] = minf(r.Lo[d], s.Lo[d])
		out.Hi[d] = maxf(r.Hi[d], s.Hi[d])
	}
	return out
}

// Enlarge grows r in place so that it contains p.
func (r *Rect) Enlarge(p Point) {
	for d := range p {
		if p[d] < r.Lo[d] {
			r.Lo[d] = p[d]
		}
		if p[d] > r.Hi[d] {
			r.Hi[d] = p[d]
		}
	}
}

// EnlargeRect grows r in place so that it contains s.
func (r *Rect) EnlargeRect(s Rect) {
	for d := range r.Lo {
		if s.Lo[d] < r.Lo[d] {
			r.Lo[d] = s.Lo[d]
		}
		if s.Hi[d] > r.Hi[d] {
			r.Hi[d] = s.Hi[d]
		}
	}
}

// Area returns the k-dimensional volume of r; empty rectangles have area 0.
func (r Rect) Area() float64 {
	if r.IsEmpty() {
		return 0
	}
	a := 1.0
	for d := range r.Lo {
		a *= r.Extent(d)
	}
	return a
}

// Margin returns the sum of side lengths of r (the surface-area proxy used
// when discussing cubic splits in Section 3.2).
func (r Rect) Margin() float64 {
	m := 0.0
	for d := range r.Lo {
		m += r.Extent(d)
	}
	return m
}

// EnlargementArea returns the increase in Area required for r to contain p.
// This is the R-tree ChooseSubtree criterion the hybrid tree borrows for
// insertion (Section 3.5).
func (r Rect) EnlargementArea(p Point) float64 {
	grown := 1.0
	for d := range p {
		lo, hi := r.Lo[d], r.Hi[d]
		if p[d] < lo {
			lo = p[d]
		}
		if p[d] > hi {
			hi = p[d]
		}
		grown *= float64(hi) - float64(lo)
	}
	return grown - r.Area()
}

// MinkowskiVolume returns the volume of r with every side extended by query
// side length side — the probability that a uniformly placed box query of
// that side overlaps r in a normalized data space (Section 3.2, Figure 2).
func (r Rect) MinkowskiVolume(side float64) float64 {
	v := 1.0
	for d := range r.Lo {
		v *= r.Extent(d) + side
	}
	return v
}

// Center returns the centroid of r.
func (r Rect) Center() Point {
	c := make(Point, r.Dim())
	for d := range c {
		c[d] = (r.Lo[d] + r.Hi[d]) / 2
	}
	return c
}

// Equal reports whether r and s are identical rectangles.
func (r Rect) Equal(s Rect) bool {
	return r.Lo.Equal(s.Lo) && r.Hi.Equal(s.Hi)
}

// String formats the rectangle for diagnostics.
func (r Rect) String() string {
	return fmt.Sprintf("[%v..%v]", r.Lo, r.Hi)
}

func minf(a, b float32) float32 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float32) float32 {
	if a > b {
		return a
	}
	return b
}

// BoundingRect returns the minimum bounding rectangle of the given points.
// It panics on an empty slice: callers own the "no data" case.
func BoundingRect(pts []Point) Rect {
	if len(pts) == 0 {
		panic("geom: BoundingRect of no points")
	}
	r := Rect{Lo: pts[0].Clone(), Hi: pts[0].Clone()}
	for _, p := range pts[1:] {
		r.Enlarge(p)
	}
	return r
}

// Centroid returns the arithmetic mean of the given points (used by the
// SR-tree's nearest-centroid insertion).
func Centroid(pts []Point) Point {
	if len(pts) == 0 {
		panic("geom: Centroid of no points")
	}
	dim := len(pts[0])
	acc := make([]float64, dim)
	for _, p := range pts {
		for d, v := range p {
			acc[d] += float64(v)
		}
	}
	c := make(Point, dim)
	for d := range c {
		c[d] = float32(acc[d] / float64(len(pts)))
	}
	return c
}
