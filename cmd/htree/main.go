// Command htree builds, queries and inspects hybrid tree index files on
// disk.
//
//	htree build  -db idx.ht -dim 16 -csv vectors.csv     # rid,v0,v1,...
//	htree build  -db idx.ht -dim 64 -dataset colhist -n 70000
//	htree knn    -db idx.ht -dim 64 -point 0.1,0.2,...  -k 10 -metric L1
//	htree range  -db idx.ht -dim 64 -point ...          -radius 0.3
//	htree box    -db idx.ht -dim 64 -lo 0,0,...  -hi 0.5,0.5,...
//	htree explain -db idx.ht -dim 64 -lo ... -hi ...   # per-level pruning
//	htree stats  -db idx.ht -dim 64
//	htree verify -db idx.ht -dim 64
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"hybridtree/internal/core"
	"hybridtree/internal/dataset"
	"hybridtree/internal/dist"
	"hybridtree/internal/geom"
	"hybridtree/internal/obs"
	"hybridtree/internal/pagefile"
	"hybridtree/internal/wal"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	if cmd == "version" || cmd == "-version" || cmd == "--version" {
		commit, goVersion := obs.BuildVersion()
		fmt.Printf("htree %s (%s)\n", commit, goVersion)
		return
	}
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	var (
		db       = fs.String("db", "", "index file path (required)")
		dim      = fs.Int("dim", 0, "dimensionality (required)")
		pageSize = fs.Int("page", pagefile.DefaultPageSize, "page size in bytes")
		csvPath  = fs.String("csv", "", "build: CSV file of rid,v0,v1,... rows")
		dsName   = fs.String("dataset", "", "build: synthetic dataset (colhist or fourier)")
		n        = fs.Int("n", 10000, "build: synthetic dataset size")
		bulk     = fs.Bool("bulk", false, "build: bulk load instead of incremental insertion")
		seed     = fs.Int64("seed", 1, "build: synthetic dataset seed")
		point    = fs.String("point", "", "query point, comma separated")
		loStr    = fs.String("lo", "", "box query lower corner")
		hiStr    = fs.String("hi", "", "box query upper corner")
		k        = fs.Int("k", 10, "knn: number of neighbors")
		radius   = fs.Float64("radius", 0.1, "range: query radius")
		metric   = fs.String("metric", "L2", "distance metric: L1, L2, Linf, or Lp:<p>")
		deadline = fs.Duration("deadline", 0, "query: context deadline; an expired query aborts with no results (0 disables)")
		budgetPg = fs.Int("budget-pages", 0, "query: page-read budget; an exhausted query degrades to a partial answer (0 = unlimited)")
		mmap     = fs.Bool("mmap", false, "query: open the index read-only through a memory mapping")
		walOn    = fs.Bool("wal", false, "write ahead through <db>.wal: every build insert is committed and fsynced before it is acknowledged, and reopening replays any tail a crash left behind")
		fsyncEv  = fs.Int("fsync-every", 1, "wal: fsync the log every N commits; above 1 the last N-1 acknowledged commits can be lost to a crash")
		ckptOps  = fs.Int("checkpoint-ops", 0, "wal build: checkpoint (flush pages, truncate the log) every N inserts (0 = only at close)")
	)
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}
	if *db == "" || *dim == 0 {
		fatal("-db and -dim are required")
	}
	if *walOn && *mmap {
		fatal("-wal and -mmap are incompatible: a memory mapping is read-only and replay must be able to write recovered pages")
	}

	switch cmd {
	case "build":
		build(*db, *dim, *pageSize, *csvPath, *dsName, *n, *seed, *bulk,
			walConfig{on: *walOn, fsyncEvery: *fsyncEv, checkpointOps: *ckptOps})
	case "knn", "range", "box", "explain", "stats", "verify":
		file, err := openRead(*db, *pageSize, *mmap, *walOn, *fsyncEv)
		check(err)
		defer file.Close()
		tree, err := core.Open(file, core.Config{Dim: *dim, PageSize: *pageSize})
		check(err)
		lc := lifecycle{deadline: *deadline, budget: core.Budget{MaxPageReads: *budgetPg}}
		switch cmd {
		case "knn":
			runKNN(tree, parsePoint(*point, *dim), *k, parseMetric(*metric), lc)
		case "range":
			runRange(tree, parsePoint(*point, *dim), *radius, parseMetric(*metric), lc)
		case "box":
			runBox(tree, parsePoint(*loStr, *dim), parsePoint(*hiStr, *dim), lc)
		case "explain":
			runExplain(tree, parsePoint(*loStr, *dim), parsePoint(*hiStr, *dim))
		case "stats":
			runStats(tree, file)
		case "verify":
			check(tree.CheckInvariants())
			fmt.Printf("ok: %d entries, height %d, invariants hold\n", tree.Size(), tree.Height())
		}
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: htree {build|knn|range|box|explain|stats|verify|version} -db FILE -dim D [flags]")
	os.Exit(2)
}

func fatal(msg string) {
	fmt.Fprintln(os.Stderr, "htree:", msg)
	os.Exit(1)
}

func check(err error) {
	if err != nil {
		fatal(err.Error())
	}
}

// walConfig carries the -wal knobs into build.
type walConfig struct {
	on            bool
	fsyncEvery    int
	checkpointOps int
}

// walPath is where the log lives, next to the index file.
func walPath(db string) string { return db + ".wal" }

// openWAL stacks the write-ahead log over base, replaying any committed
// tail the log holds. Recovery is reported because it is the user-visible
// sign that the last session crashed.
func openWAL(base pagefile.File, db string, fsyncEvery int) (pagefile.File, error) {
	log, err := wal.OpenFileLog(walPath(db))
	if err != nil {
		return nil, err
	}
	f, rec, err := wal.Open(base, log, wal.Options{FsyncEvery: fsyncEvery})
	if err != nil {
		return nil, err
	}
	if rec.Txs > 0 || rec.Discarded > 0 || rec.TornBytes > 0 {
		fmt.Fprintf(os.Stderr, "htree: recovered %s: %d transactions replayed (%d records), %d uncommitted records discarded, %d torn bytes dropped\n",
			walPath(db), rec.Txs, rec.Replayed, rec.Discarded, rec.TornBytes)
	}
	return f, nil
}

// openRead opens an existing index for the read-only query commands: through
// a read-only memory mapping when -mmap is set (the query commands never
// write pages, so MmapFile's ErrReadOnly surface is unreachable), otherwise
// read-write through the ordinary disk file — with the WAL stacked on top
// when -wal is set, so a crashed build's committed tail is replayed before
// the query runs.
func openRead(path string, pageSize int, mmap, walOn bool, fsyncEvery int) (pagefile.File, error) {
	if mmap {
		return pagefile.OpenMmapFile(path, pageSize)
	}
	file, err := pagefile.OpenDiskFile(path, pageSize)
	if err != nil {
		return nil, err
	}
	if walOn {
		return openWAL(file, path, fsyncEvery)
	}
	return file, nil
}

func build(db string, dim, pageSize int, csvPath, dsName string, n int, seed int64, bulk bool, wc walConfig) {
	disk, err := pagefile.CreateDiskFile(db, pageSize)
	check(err)
	var file pagefile.File = disk
	if wc.on {
		file, err = openWAL(disk, db, wc.fsyncEvery)
		check(err)
	}
	defer file.Close()

	start := time.Now()
	count := 0
	var tree *core.Tree
	var bulkPts []geom.Point
	var bulkRids []core.RecordID
	if !bulk {
		tree, err = core.New(file, core.Config{Dim: dim, PageSize: pageSize})
		check(err)
	}
	insert := func(p geom.Point, rid core.RecordID) {
		if bulk {
			bulkPts = append(bulkPts, p)
			bulkRids = append(bulkRids, rid)
		} else {
			check(tree.Insert(p, rid))
			if wc.on && wc.checkpointOps > 0 && (count+1)%wc.checkpointOps == 0 {
				check(tree.Flush())
			}
		}
		count++
	}
	switch {
	case csvPath != "":
		f, err := os.Open(csvPath)
		check(err)
		defer f.Close()
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		line := 0
		for sc.Scan() {
			line++
			text := strings.TrimSpace(sc.Text())
			if text == "" || strings.HasPrefix(text, "#") {
				continue
			}
			parts := strings.Split(text, ",")
			if len(parts) != dim+1 {
				fatal(fmt.Sprintf("line %d: want rid plus %d coords, got %d fields", line, dim, len(parts)))
			}
			rid, err := strconv.ParseUint(strings.TrimSpace(parts[0]), 10, 64)
			check(err)
			p := make(geom.Point, dim)
			for d := 0; d < dim; d++ {
				v, err := strconv.ParseFloat(strings.TrimSpace(parts[d+1]), 32)
				check(err)
				p[d] = float32(v)
			}
			insert(p, core.RecordID(rid))
		}
		check(sc.Err())
	case dsName == "colhist":
		for i, p := range dataset.ColHist(n, dim, seed) {
			insert(p, core.RecordID(i))
		}
	case dsName == "fourier":
		for i, p := range dataset.Fourier(n, dim, seed) {
			insert(p, core.RecordID(i))
		}
	default:
		fatal("build needs -csv or -dataset {colhist|fourier}")
	}
	if bulk {
		tree, err = core.BulkLoad(file, core.Config{Dim: dim, PageSize: pageSize}, bulkPts, bulkRids)
		check(err)
	}
	check(tree.Close())
	if wc.on {
		// Final checkpoint: flush every recovered-overlay page into the
		// index file and truncate the log, so the index stands alone.
		check(tree.Flush())
	}
	fmt.Printf("built %s: %d entries, height %d, %d pages, %v\n",
		db, count, tree.Height(), disk.NumPages(), time.Since(start).Round(time.Millisecond))
}

func parsePoint(s string, dim int) geom.Point {
	if s == "" {
		fatal("missing point (use -point/-lo/-hi v0,v1,...)")
	}
	parts := strings.Split(s, ",")
	if len(parts) != dim {
		fatal(fmt.Sprintf("point has %d coords, index dim is %d", len(parts), dim))
	}
	p := make(geom.Point, dim)
	for d, part := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 32)
		check(err)
		p[d] = float32(v)
	}
	return p
}

func parseMetric(s string) dist.Metric {
	switch strings.ToUpper(s) {
	case "L1":
		return dist.L1()
	case "L2":
		return dist.L2()
	case "LINF":
		return dist.Linf()
	}
	if strings.HasPrefix(strings.ToUpper(s), "LP:") {
		p, err := strconv.ParseFloat(s[3:], 64)
		check(err)
		return dist.LpMetric{P: p}
	}
	fatal("unknown metric " + s)
	return nil
}

// lifecycle carries the per-query deadline and budget flags. ctx returns
// the query context; settle handles the query error: a budget-exhausted
// query prints a degraded-answer note and keeps its partial results, any
// other error is fatal.
type lifecycle struct {
	deadline time.Duration
	budget   core.Budget
}

func (lc lifecycle) ctx() (context.Context, context.CancelFunc) {
	if lc.deadline > 0 {
		return context.WithTimeout(context.Background(), lc.deadline)
	}
	return context.Background(), func() {}
}

func settle(err error) {
	if err == nil {
		return
	}
	var be *core.ErrBudgetExceeded
	if errors.As(err, &be) {
		fmt.Printf("degraded: %v\n", be)
		return
	}
	check(err)
}

func runKNN(tree *core.Tree, q geom.Point, k int, m dist.Metric, lc lifecycle) {
	stats := tree.File().Stats()
	stats.Reset()
	ctx, cancel := lc.ctx()
	defer cancel()
	start := time.Now()
	ns, err := tree.SearchKNNContext(ctx, core.NewQueryContext(), q, k, m, lc.budget, nil)
	settle(err)
	for i, nb := range ns {
		fmt.Printf("%2d. rid=%d dist=%.6f\n", i+1, nb.RID, nb.Dist)
	}
	fmt.Printf("(%d page reads, %v)\n", stats.Reads(), time.Since(start).Round(time.Microsecond))
}

func runRange(tree *core.Tree, q geom.Point, radius float64, m dist.Metric, lc lifecycle) {
	stats := tree.File().Stats()
	stats.Reset()
	ctx, cancel := lc.ctx()
	defer cancel()
	start := time.Now()
	ns, err := tree.SearchRangeContext(ctx, core.NewQueryContext(), q, radius, m, lc.budget, nil)
	settle(err)
	for _, nb := range ns {
		fmt.Printf("rid=%d dist=%.6f\n", nb.RID, nb.Dist)
	}
	fmt.Printf("(%d results, %d page reads, %v)\n", len(ns), stats.Reads(), time.Since(start).Round(time.Microsecond))
}

func runBox(tree *core.Tree, lo, hi geom.Point, lc lifecycle) {
	stats := tree.File().Stats()
	stats.Reset()
	ctx, cancel := lc.ctx()
	defer cancel()
	start := time.Now()
	es, err := tree.SearchBoxContext(ctx, core.NewQueryContext(), geom.NewRect(lo, hi), lc.budget, nil)
	settle(err)
	for _, e := range es {
		fmt.Printf("rid=%d\n", e.RID)
	}
	fmt.Printf("(%d results, %d page reads, %v)\n", len(es), stats.Reads(), time.Since(start).Round(time.Microsecond))
}

func runExplain(tree *core.Tree, lo, hi geom.Point) {
	_, ex, err := tree.ExplainBox(geom.NewRect(lo, hi))
	check(err)
	fmt.Print(ex.String())
}

func runStats(tree *core.Tree, file pagefile.File) {
	st, err := tree.Stats()
	check(err)
	fmt.Printf("entries:          %d\n", st.Entries)
	fmt.Printf("height:           %d\n", st.Height)
	fmt.Printf("data nodes:       %d\n", st.DataNodes)
	fmt.Printf("index nodes:      %d\n", st.IndexNodes)
	fmt.Printf("pages:            %d\n", file.NumPages())
	fmt.Printf("avg fanout:       %.1f (max %d)\n", st.AvgFanout, st.MaxFanout)
	fmt.Printf("avg data fill:    %.1f%% (min %.1f%%)\n", st.AvgDataFill*100, st.MinDataFill*100)
	fmt.Printf("overlapping kd:   %.1f%% of internal records\n", st.OverlapFraction*100)
	fmt.Printf("split dims used:  %d\n", st.SplitDimsUsed)
	fmt.Printf("ELS side table:   %d bytes\n", st.ELSBytes)
}
