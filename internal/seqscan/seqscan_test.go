package seqscan

import (
	"math/rand"
	"sort"
	"testing"

	"hybridtree/internal/dist"
	"hybridtree/internal/geom"
	"hybridtree/internal/pagefile"
)

func build(t testing.TB, n, dim, pageSize int, seed int64) (*Scan, []geom.Point, *pagefile.MemFile) {
	t.Helper()
	file := pagefile.NewMemFile(pageSize)
	s, err := New(file, dim)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, dim)
		for d := range p {
			p[d] = rng.Float32()
		}
		pts[i] = p
		if err := s.Insert(p, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	return s, pts, file
}

func TestValidation(t *testing.T) {
	if _, err := New(pagefile.NewMemFile(512), 0); err == nil {
		t.Fatal("dim 0 accepted")
	}
	if _, err := New(pagefile.NewMemFile(16), 64); err == nil {
		t.Fatal("impossible geometry accepted")
	}
	s, _ := New(pagefile.NewMemFile(512), 4)
	if err := s.Insert(geom.Point{0.5}, 1); err == nil {
		t.Fatal("wrong dim accepted")
	}
	if _, err := s.SearchBox(geom.UnitCube(2)); err == nil {
		t.Fatal("wrong dim query accepted")
	}
	if _, err := s.SearchKNN(make(geom.Point, 4), 0, dist.L2()); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestSearches(t *testing.T) {
	s, pts, _ := build(t, 2000, 6, 512, 3)
	if s.Len() != 2000 {
		t.Fatalf("len = %d", s.Len())
	}
	rng := rand.New(rand.NewSource(5))

	rect := geom.Rect{Lo: make(geom.Point, 6), Hi: make(geom.Point, 6)}
	for d := 0; d < 6; d++ {
		c := rng.Float32()
		rect.Lo[d], rect.Hi[d] = c-0.35, c+0.35
	}
	got, err := s.SearchBox(rect)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, p := range pts {
		if rect.Contains(p) {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("box: got %d, want %d", len(got), want)
	}
	for _, e := range got {
		if !rect.Contains(e.Point) {
			t.Fatal("result outside box")
		}
		if !pts[e.RID].Equal(e.Point) {
			t.Fatal("round-tripped point corrupted")
		}
	}

	center := pts[17]
	m := dist.L1()
	rres, err := s.SearchRange(center, 0.8, m)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, p := range pts {
		if m.Distance(center, p) <= 0.8 {
			count++
		}
	}
	if len(rres) != count {
		t.Fatalf("range: got %d, want %d", len(rres), count)
	}

	nres, err := s.SearchKNN(center, 12, m)
	if err != nil {
		t.Fatal(err)
	}
	dists := make([]float64, len(pts))
	for i, p := range pts {
		dists[i] = m.Distance(center, p)
	}
	sort.Float64s(dists)
	for i, nb := range nres {
		if diff := nb.Dist - dists[i]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("knn %d: %g vs %g", i, nb.Dist, dists[i])
		}
	}
}

func TestSequentialAccounting(t *testing.T) {
	s, _, file := build(t, 1000, 8, 512, 7)
	file.Stats().Reset()
	if _, err := s.SearchBox(geom.UnitCube(8)); err != nil {
		t.Fatal(err)
	}
	st := file.Stats()
	if st.RandomReads != 0 {
		t.Fatalf("scan made %d random reads", st.RandomReads)
	}
	if int(st.SeqReads) != s.NumPages() {
		t.Fatalf("seq reads %d != pages %d", st.SeqReads, s.NumPages())
	}
	// The paper's convention: a full scan normalizes to exactly 0.1.
	if got := st.NormalizedIO(s.NumPages()); got != 0.1 {
		t.Fatalf("normalized scan cost = %g, want 0.1", got)
	}
}

func TestPageUtilization(t *testing.T) {
	// Pages fill completely before a new one is allocated.
	s, _, _ := build(t, 500, 4, 512, 11)
	perPage := (512 - headerSize) / (8 + 4*4)
	wantPages := (500 + perPage - 1) / perPage
	if s.NumPages() != wantPages {
		t.Fatalf("pages = %d, want %d", s.NumPages(), wantPages)
	}
}
