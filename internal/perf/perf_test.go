package perf

import (
	"path/filepath"
	"strings"
	"testing"
)

// mkSnap builds a snapshot with the given per-benchmark metric medians and
// a fixed fingerprint, repeats defaulting to 5.
func mkSnap(metrics map[string]map[string]float64) *Snapshot {
	s := &Snapshot{
		SchemaVersion: SchemaVersion,
		Env: Env{
			Commit: "abc123", GoVersion: "go1.22", GOOS: "linux", GOARCH: "amd64",
			CPUModel: "testcpu", NumCPU: 8, GOMAXPROCS: 8,
		},
	}
	for name, ms := range metrics {
		b := Benchmark{Name: name, Repeats: 5, Metrics: make(map[string]Stat, len(ms))}
		for unit, v := range ms {
			b.Metrics[unit] = Stat{Median: v, P10: v * 0.95, P90: v * 1.05}
		}
		s.Benchmarks = append(s.Benchmarks, b)
	}
	return s
}

// fullMetrics is a healthy run covering every benchmark DefaultRules needs.
func fullMetrics() map[string]map[string]float64 {
	return map[string]map[string]float64{
		BenchMixedMVCC:     {"ns/op": 9e7, "read_qps": 50000},
		BenchMixedRWLock:   {"ns/op": 9e7, "read_qps": 30000},
		BenchMixedReadOnly: {"ns/op": 5e7, "read_qps": 100000},
		BenchLeafScanOld:   {"ns/op": 1000},
		BenchLeafScanSlab:  {"ns/op": 800},
		BenchLeafDecOld:    {"ns/op": 500},
		BenchLeafDecSlab:   {"ns/op": 400},
		BenchKNNTracerOff:  {"ns/op": 40000, "allocs/op": 0},
		BenchKNNTracerNop:  {"ns/op": 41000, "allocs/op": 0},
		BenchKNNCtx:        {"ns/op": 42000, "allocs/op": 0},
		BenchBoxCtx:        {"ns/op": 30000, "allocs/op": 0},
		BenchRangeCtx:      {"ns/op": 35000, "allocs/op": 0},
	}
}

func TestCompareHealthyRunPasses(t *testing.T) {
	base := mkSnap(fullMetrics())
	cur := mkSnap(fullMetrics())
	rep := Compare(base, cur, DefaultRules())
	if rep.Failed() {
		t.Fatalf("healthy identical run gated: %+v", rep.Gates())
	}
}

// TestCompareGatesOnSyntheticSlowdown is the acceptance check for the
// unified gate: a synthetic >=25% wall-clock regression on a gated
// benchmark must fail the comparison.
func TestCompareGatesOnSyntheticSlowdown(t *testing.T) {
	base := mkSnap(fullMetrics())
	slow := fullMetrics()
	slow[BenchKNNCtx]["ns/op"] *= 1.30 // 30% slower than baseline
	cur := mkSnap(slow)
	rep := Compare(base, cur, DefaultRules())
	if !rep.Failed() {
		t.Fatalf("30%% slowdown on %s did not gate; findings: %+v", BenchKNNCtx, rep.Findings)
	}
	found := false
	for _, g := range rep.Gates() {
		if g.Bench == BenchKNNCtx && g.Metric == "ns/op" {
			found = true
		}
	}
	if !found {
		t.Fatalf("gate findings missing %s ns/op: %+v", BenchKNNCtx, rep.Gates())
	}
}

func TestCompareWarnsBelowGateThreshold(t *testing.T) {
	base := mkSnap(fullMetrics())
	mid := fullMetrics()
	mid[BenchKNNCtx]["ns/op"] *= 1.15 // between warn (10%) and gate (25%)
	rep := Compare(base, mkSnap(mid), DefaultRules())
	if rep.Failed() {
		t.Fatalf("15%% slowdown gated: %+v", rep.Gates())
	}
	warned := false
	for _, f := range rep.Findings {
		if f.Level == LevelWarn && f.Bench == BenchKNNCtx {
			warned = true
		}
	}
	if !warned {
		t.Fatalf("15%% slowdown produced no warning: %+v", rep.Findings)
	}
}

func TestCompareDowngradesAcrossMachines(t *testing.T) {
	base := mkSnap(fullMetrics())
	slow := fullMetrics()
	slow[BenchKNNCtx]["ns/op"] *= 2
	cur := mkSnap(slow)
	cur.Env.CPUModel = "othercpu"
	rep := Compare(base, cur, DefaultRules())
	if rep.Failed() {
		t.Fatalf("cross-machine wall-clock delta gated: %+v", rep.Gates())
	}
}

func TestCompareDowngradesFewRepeats(t *testing.T) {
	base := mkSnap(fullMetrics())
	slow := fullMetrics()
	slow[BenchKNNCtx]["ns/op"] *= 2
	cur := mkSnap(slow)
	for i := range cur.Benchmarks {
		cur.Benchmarks[i].Repeats = 1
	}
	rep := Compare(base, cur, DefaultRules())
	if rep.Failed() {
		t.Fatalf("single-repeat wall-clock delta gated: %+v", rep.Gates())
	}
}

func TestRatioRulesGateSameRun(t *testing.T) {
	// Ratio gates hold even with no baseline and across machines: they
	// compare within one run.
	bad := fullMetrics()
	bad[BenchLeafScanSlab]["ns/op"] = bad[BenchLeafScanOld]["ns/op"] * 1.5
	rep := Compare(nil, mkSnap(bad), DefaultRules())
	if !rep.Failed() {
		t.Fatalf("1.5x slab/legacy ratio did not gate: %+v", rep.Findings)
	}

	// A required pair member missing is itself a gate.
	missing := fullMetrics()
	delete(missing, BenchMixedReadOnly)
	rep = Compare(nil, mkSnap(missing), DefaultRules())
	if !rep.Failed() {
		t.Fatalf("missing ratio denominator did not gate: %+v", rep.Findings)
	}

	// Tracer overhead past 8% gates.
	trc := fullMetrics()
	trc[BenchKNNTracerNop]["ns/op"] = trc[BenchKNNTracerOff]["ns/op"] * 1.2
	rep = Compare(nil, mkSnap(trc), DefaultRules())
	if !rep.Failed() {
		t.Fatalf("20%% tracer overhead did not gate: %+v", rep.Findings)
	}

	// Mixed read throughput collapsing below 20% of read-only gates.
	mix := fullMetrics()
	mix[BenchMixedMVCC]["read_qps"] = mix[BenchMixedReadOnly]["read_qps"] * 0.1
	rep = Compare(nil, mkSnap(mix), DefaultRules())
	if !rep.Failed() {
		t.Fatalf("10%% mixed read retention did not gate: %+v", rep.Findings)
	}
}

func TestAllocRuleGates(t *testing.T) {
	// Absolute ceiling: the traced-off k-NN path must stay at 0 allocs/op,
	// baseline or not.
	bad := fullMetrics()
	bad[BenchKNNTracerOff]["allocs/op"] = 2
	rep := Compare(nil, mkSnap(bad), DefaultRules())
	if !rep.Failed() {
		t.Fatalf("2 allocs/op on zero-alloc path did not gate: %+v", rep.Findings)
	}

	// Any growth vs baseline gates even under the ceiling.
	base := fullMetrics()
	base[BenchKNNTracerOff]["allocs/op"] = 0
	cur := fullMetrics()
	r := AllocRule{Bench: BenchBoxCtx, MaxAllocs: -1}
	curM := mkSnap(cur)
	curM.Lookup(BenchBoxCtx).Metrics["allocs/op"] = Stat{Median: 3}
	rep = Compare(mkSnap(base), curM, []Rule{r})
	if !rep.Failed() {
		t.Fatalf("alloc growth vs baseline did not gate: %+v", rep.Findings)
	}
}

func TestParseGoBench(t *testing.T) {
	input := `goos: linux
goarch: amd64
pkg: hybridtree/internal/bench
cpu: Test CPU @ 2.00GHz
BenchmarkMixed90R10W/mvcc-8         	       1	84521633 ns/op	    118319 read_qps	   51000 read_p50_ns	       0 B/op	       0 allocs/op
BenchmarkMixed90R10W/mvcc-8         	       1	86521633 ns/op	    118500 read_qps	   52000 read_p50_ns	       0 B/op	       0 allocs/op
BenchmarkMixed90R10W/mvcc-8         	       1	85521633 ns/op	    117000 read_qps	   53000 read_p50_ns	       0 B/op	       0 allocs/op
BenchmarkLeafScanSlab-8   	 1000000	      1042 ns/op	       0 B/op	       0 allocs/op
PASS
pkg: hybridtree/internal/core
BenchmarkSearchKNNTracerOff-8   	   30000	     41024 ns/op	       0 B/op	       0 allocs/op
ok  	hybridtree/internal/core	1.318s
`
	bs, err := ParseGoBench(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]Benchmark)
	for _, b := range bs {
		byName[b.Name] = b
	}
	mvcc, ok := byName["internal/bench.Mixed90R10W/mvcc"]
	if !ok {
		t.Fatalf("canonical name missing; got %v", keysOf(byName))
	}
	if mvcc.Repeats != 3 {
		t.Fatalf("mvcc repeats = %d, want 3", mvcc.Repeats)
	}
	if got := mvcc.Metrics["ns/op"].Median; got != 85521633 {
		t.Fatalf("mvcc ns/op median = %g", got)
	}
	if got := mvcc.Metrics["read_qps"].Median; got != 118319 {
		t.Fatalf("mvcc read_qps median = %g (custom metric lost?)", got)
	}
	if _, ok := byName["internal/core.SearchKNNTracerOff"]; !ok {
		t.Fatalf("core benchmark missing; got %v", keysOf(byName))
	}
	if got := byName["internal/bench.LeafScanSlab"].Metrics["ns/op"].Median; got != 1042 {
		t.Fatalf("slab ns/op = %g", got)
	}
}

func keysOf(m map[string]Benchmark) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestSnapshotRoundTripAndValidate(t *testing.T) {
	bs, err := ParseGoBench(strings.NewReader(`pkg: hybridtree/internal/core
BenchmarkSearchKNNCtx16d-8 	10	40000 ns/op	0 B/op	0 allocs/op
`))
	if err != nil {
		t.Fatal(err)
	}
	s := NewSnapshot(bs)
	if err := s.Validate(1); err != nil {
		t.Fatalf("fresh snapshot invalid: %v", err)
	}
	if err := s.Validate(2); err == nil {
		t.Fatal("minBench=2 should fail a 1-benchmark snapshot")
	}
	if s.Env.GOOS == "" || s.Env.GoVersion == "" {
		t.Fatalf("fingerprint incomplete: %+v", s.Env)
	}
	path := filepath.Join(t.TempDir(), "snap.json")
	if err := s.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Benchmarks) != 1 || got.Benchmarks[0].Name != "internal/core.SearchKNNCtx16d" {
		t.Fatalf("round trip mangled: %+v", got.Benchmarks)
	}
}

func TestPercentile(t *testing.T) {
	s := summarize([]float64{5, 1, 3, 2, 4})
	if s.Median != 3 {
		t.Fatalf("median = %g", s.Median)
	}
	if s.P10 < 1 || s.P10 > 2 || s.P90 < 4 || s.P90 > 5 {
		t.Fatalf("p10/p90 = %g/%g", s.P10, s.P90)
	}
	one := summarize([]float64{7})
	if one.Median != 7 || one.P10 != 7 || one.P90 != 7 {
		t.Fatalf("single-sample stat = %+v", one)
	}
}
