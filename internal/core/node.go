package core

import (
	"fmt"

	"hybridtree/internal/geom"
	"hybridtree/internal/pagefile"
)

// kdNone marks an absent kd-arena link.
const kdNone int32 = -1

// kdNode is one node of the intra-node kd-tree. Internal nodes carry the
// split dimension and the two split positions of the paper's modified
// kd-tree: Lsp bounds the lower-side subtree from above (x_dim <= Lsp) and
// Rsp bounds the higher-side subtree from below (x_dim >= Rsp). Lsp == Rsp
// is a clean split; Lsp > Rsp means the two subspaces overlap in
// [Rsp, Lsp]; Lsp < Rsp leaves a gap no data currently occupies.
//
// Leaf nodes reference a child page of the hybrid tree; the children of a
// hybrid tree node are exactly the kd-leaves of its kd-tree (Figure 1).
type kdNode struct {
	Dim         uint16
	Lsp, Rsp    float32
	Left, Right int32           // arena indices; kdNone on leaves
	Child       pagefile.PageID // valid on leaves only
}

func (k *kdNode) isLeaf() bool { return k.Left == kdNone && k.Right == kdNone }

// node is the decoded form of one hybrid tree page: either a data node
// (points plus record ids) or an index node (a kd-tree over children).
type node struct {
	id   pagefile.PageID
	leaf bool

	// Data node payload: one contiguous slab of count*dim coordinates, so
	// leaf scans stream linearly instead of pointer-chasing one heap
	// allocation per point. vals[i*dim:(i+1)*dim] is point i and belongs to
	// rids[i]; dim is the tree dimensionality, fixed at decode/alloc time.
	dim  int
	vals []float32
	rids []RecordID

	// Index node payload: kd-tree arena. kdRoot indexes the root; dead
	// entries may exist after child removal until the next encode, which
	// compacts reachable nodes.
	kd     []kdNode
	kdRoot int32
}

// count returns the number of entries in a data node.
func (n *node) count() int { return len(n.rids) }

// point returns a view of point i over the slab. The full slice expression
// caps the view so an append through it can never clobber point i+1.
func (n *node) point(i int) geom.Point {
	return geom.Point(n.vals[i*n.dim : (i+1)*n.dim : (i+1)*n.dim])
}

// coord returns coordinate d of point i without building a slice header —
// the form split-ordering comparators want.
func (n *node) coord(i, d int) float32 { return n.vals[i*n.dim+d] }

// appendPoint appends one entry to the data node payload.
func (n *node) appendPoint(p geom.Point, rid RecordID) {
	n.vals = append(n.vals, p...)
	n.rids = append(n.rids, rid)
}

// swapRemove removes entry i by moving the last entry into its slot (order
// is not meaningful inside a data node).
func (n *node) swapRemove(i int) {
	last := n.count() - 1
	copy(n.vals[i*n.dim:(i+1)*n.dim], n.vals[last*n.dim:(last+1)*n.dim])
	n.rids[i] = n.rids[last]
	n.vals = n.vals[:last*n.dim]
	n.rids = n.rids[:last]
}

// materializePoints appends per-point views of the slab to dst — for cold
// paths (split policies, orphan reinsertion) that want []geom.Point. The
// views alias the slab; callers must treat them as read-only.
func (n *node) materializePoints(dst []geom.Point) []geom.Point {
	for i := 0; i < n.count(); i++ {
		dst = append(dst, n.point(i))
	}
	return dst
}

// clone returns a private copy the writer may mutate freely. The slab is
// copied wholesale, so published versions a concurrent reader holds are
// never touched — the MVCC copy-on-write boundary.
func (n *node) clone() *node {
	c := &node{id: n.id, leaf: n.leaf, dim: n.dim, kdRoot: n.kdRoot}
	if n.vals != nil {
		c.vals = append([]float32(nil), n.vals...)
	}
	if n.rids != nil {
		c.rids = append([]RecordID(nil), n.rids...)
	}
	if n.kd != nil {
		c.kd = append([]kdNode(nil), n.kd...)
	}
	return c
}

// numChildren returns the number of children (kd leaves) of an index node.
func (n *node) numChildren() int {
	if n.leaf {
		return 0
	}
	count := 0
	n.walkLeaves(func(int32) { count++ })
	return count
}

// walkLeaves calls fn for every reachable kd-leaf arena index, in tree
// order.
func (n *node) walkLeaves(fn func(idx int32)) {
	if n.kdRoot == kdNone {
		return
	}
	// Explicit stack; intra-node trees are small but recursion adds
	// per-call overhead on the hottest path in the system.
	stack := make([]int32, 0, 16)
	stack = append(stack, n.kdRoot)
	for len(stack) > 0 {
		idx := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		k := &n.kd[idx]
		if k.isLeaf() {
			fn(idx)
			continue
		}
		stack = append(stack, k.Right, k.Left)
	}
}

// childEntry is one element of the "array of BRs" view of an index node:
// a child page together with its mapped bounding region.
type childEntry struct {
	child pagefile.PageID
	br    geom.Rect
	kdIdx int32
}

// children materializes the BR mapping of Section 3.1: given the node's own
// bounding region nodeBR, it computes the mapped BR of every child by
// walking the kd-tree and narrowing one boundary per internal node (left
// child: hi_dim = min(hi_dim, Lsp); right child: lo_dim = max(lo_dim, Rsp)).
func (n *node) children(nodeBR geom.Rect) []childEntry {
	out := make([]childEntry, 0, 8)
	if n.kdRoot == kdNone {
		return out
	}
	br := nodeBR.Clone()
	var walk func(idx int32)
	walk = func(idx int32) {
		k := &n.kd[idx]
		if k.isLeaf() {
			out = append(out, childEntry{child: k.Child, br: br.Clone(), kdIdx: idx})
			return
		}
		d := int(k.Dim)
		// Left subtree: x_d <= Lsp.
		oldHi := br.Hi[d]
		if k.Lsp < oldHi {
			br.Hi[d] = k.Lsp
		}
		if br.Hi[d] >= br.Lo[d] {
			walk(k.Left)
		}
		br.Hi[d] = oldHi
		// Right subtree: x_d >= Rsp.
		oldLo := br.Lo[d]
		if k.Rsp > oldLo {
			br.Lo[d] = k.Rsp
		}
		if br.Hi[d] >= br.Lo[d] {
			walk(k.Right)
		}
		br.Lo[d] = oldLo
	}
	walk(n.kdRoot)
	return out
}

// childBR returns the mapped BR of the child at kd-arena index target,
// given the node's BR. It panics if target is not a reachable leaf: that is
// an arena-corruption bug, not a recoverable condition.
func (n *node) childBR(nodeBR geom.Rect, target int32) geom.Rect {
	br := nodeBR.Clone()
	var found *geom.Rect
	var walk func(idx int32) bool
	walk = func(idx int32) bool {
		if idx == target {
			c := br.Clone()
			found = &c
			return true
		}
		k := &n.kd[idx]
		if k.isLeaf() {
			return false
		}
		d := int(k.Dim)
		oldHi := br.Hi[d]
		if k.Lsp < oldHi {
			br.Hi[d] = k.Lsp
		}
		ok := br.Hi[d] >= br.Lo[d] && walk(k.Left)
		br.Hi[d] = oldHi
		if ok {
			return true
		}
		oldLo := br.Lo[d]
		if k.Rsp > oldLo {
			br.Lo[d] = k.Rsp
		}
		ok = br.Hi[d] >= br.Lo[d] && walk(k.Right)
		br.Lo[d] = oldLo
		return ok
	}
	if n.kdRoot == kdNone || !walk(n.kdRoot) {
		panic(fmt.Sprintf("core: kd leaf %d unreachable in node %d", target, n.id))
	}
	return *found
}

// kdPath returns the arena indices from the kd root down to target
// (inclusive). Used when widening split positions along an insertion path.
func (n *node) kdPath(target int32) []int32 {
	var path []int32
	var walk func(idx int32) bool
	walk = func(idx int32) bool {
		path = append(path, idx)
		if idx == target {
			return true
		}
		k := &n.kd[idx]
		if !k.isLeaf() {
			if walk(k.Left) {
				return true
			}
			if walk(k.Right) {
				return true
			}
		}
		path = path[:len(path)-1]
		return false
	}
	if n.kdRoot == kdNone || !walk(n.kdRoot) {
		panic(fmt.Sprintf("core: kd node %d unreachable in node %d", target, n.id))
	}
	return path
}

// findLeafFor returns the arena index of the kd-leaf referencing child, or
// kdNone when the node does not reference it.
func (n *node) findLeafFor(child pagefile.PageID) int32 {
	found := kdNone
	n.walkLeaves(func(idx int32) {
		if n.kd[idx].Child == child {
			found = idx
		}
	})
	return found
}

// replaceLeafWithSplit substitutes the kd-leaf at index idx (which pointed
// at the page that just split) with an internal kd node describing the
// split: left and right leaves for the two result pages.
func (n *node) replaceLeafWithSplit(idx int32, s splitResult) {
	leftLeaf := int32(len(n.kd))
	n.kd = append(n.kd, kdNode{Left: kdNone, Right: kdNone, Child: s.left})
	rightLeaf := int32(len(n.kd))
	n.kd = append(n.kd, kdNode{Left: kdNone, Right: kdNone, Child: s.right})
	n.kd[idx] = kdNode{Dim: s.dim, Lsp: s.lsp, Rsp: s.rsp, Left: leftLeaf, Right: rightLeaf}
}

// removeChild detaches the kd-leaf referencing child: the leaf's parent
// internal node collapses to the sibling subtree. Removing a constraint can
// only enlarge the mapped BRs of the remaining children, so search stays
// correct (it may just prune slightly less until the next split retightens).
// Returns false when child is not referenced or is the only child.
func (n *node) removeChild(child pagefile.PageID) bool {
	target := n.findLeafFor(child)
	if target == kdNone {
		return false
	}
	if target == n.kdRoot {
		return false // only child; caller must eliminate the node instead
	}
	path := n.kdPath(target)
	parent := path[len(path)-2]
	pk := &n.kd[parent]
	sibling := pk.Left
	if sibling == target {
		sibling = pk.Right
	}
	if len(path) >= 3 {
		gp := &n.kd[path[len(path)-3]]
		if gp.Left == parent {
			gp.Left = sibling
		} else {
			gp.Right = sibling
		}
	} else {
		n.kdRoot = sibling
	}
	return true
}

// dataRect returns the bounding rectangle of a data node's points,
// streaming over the slab. Mirrors geom.BoundingRect (including panicking
// on an empty node — callers guard).
func (n *node) dataRect() geom.Rect {
	r := geom.Rect{Lo: n.point(0).Clone(), Hi: n.point(0).Clone()}
	for i := 1; i < n.count(); i++ {
		r.Enlarge(n.point(i))
	}
	return r
}

// usedSplitDims returns the set of dimensions appearing in the node's
// internal kd nodes — the candidate set D_N of Lemma 1 (implicit
// dimensionality reduction): restricting index-node split dimensions to
// dimensions already used below still yields the EDA-optimal choice.
func (n *node) usedSplitDims() []int {
	if n.leaf || n.kdRoot == kdNone {
		return nil
	}
	seen := make(map[uint16]bool)
	var order []int
	stack := []int32{n.kdRoot}
	for len(stack) > 0 {
		idx := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		k := &n.kd[idx]
		if k.isLeaf() {
			continue
		}
		if !seen[k.Dim] {
			seen[k.Dim] = true
			order = append(order, int(k.Dim))
		}
		stack = append(stack, k.Left, k.Right)
	}
	return order
}
