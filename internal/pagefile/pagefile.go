// Package pagefile provides the paged storage substrate every index
// structure in this repository sits on: fixed-size pages, allocation, and —
// crucially for reproducing the paper's evaluation — accounting of page
// accesses. The paper measures query cost as the average number of disk
// accesses per query with a 4096-byte page, and normalizes against a
// sequential scan whose pages are read 10x faster than random pages
// (Section 4). Stats captures exactly those quantities.
package pagefile

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"hybridtree/internal/obs"
)

// PageID identifies a page within a File.
type PageID uint32

// InvalidPage is a sentinel that never names a real page.
const InvalidPage PageID = ^PageID(0)

// DefaultPageSize is the page size used throughout the paper's experiments.
const DefaultPageSize = 4096

// Stats counts page-level operations. Random and sequential reads are kept
// separate because the paper's normalized I/O cost model charges sequential
// reads one tenth of a random read.
//
// Counters shared between goroutines must be bumped through the Add*
// methods, which are atomic; concurrent searches each charge their logical
// accesses this way, so totals stay exact (the paper's I/O metric is a
// count, and counts commute). Direct field access remains valid for value
// snapshots and single-threaded code (tests, struct literals), but racing a
// plain field read against Add* is undefined — use Snapshot or the atomic
// accessors when counters may be live.
type Stats struct {
	RandomReads uint64
	SeqReads    uint64
	Writes      uint64
	Allocs      uint64
	Frees       uint64
	Syncs       uint64
}

// AddRandomReads atomically adds n random reads.
func (s *Stats) AddRandomReads(n uint64) { atomic.AddUint64(&s.RandomReads, n) }

// AddSeqReads atomically adds n sequential reads.
func (s *Stats) AddSeqReads(n uint64) { atomic.AddUint64(&s.SeqReads, n) }

// AddWrites atomically adds n writes.
func (s *Stats) AddWrites(n uint64) { atomic.AddUint64(&s.Writes, n) }

// AddAllocs atomically adds n allocations.
func (s *Stats) AddAllocs(n uint64) { atomic.AddUint64(&s.Allocs, n) }

// AddFrees atomically adds n frees.
func (s *Stats) AddFrees(n uint64) { atomic.AddUint64(&s.Frees, n) }

// AddSyncs atomically adds n syncs. Syncs are the one Stats counter also
// mirrored into the process-wide registry (pagefile_syncs_total): fsyncs are
// the dominant durability cost, and the end-of-run observability dumps read
// them from the registry alongside the wal_* metrics.
func (s *Stats) AddSyncs(n uint64) {
	atomic.AddUint64(&s.Syncs, n)
	syncsCounter().Add(n)
}

// syncsCounter resolves the shared pagefile_syncs_total counter once; the
// sync path already pays an fsync, so the extra atomic add is free.
var (
	syncsOnce sync.Once
	syncsVal  *obs.Counter
)

func syncsCounter() *obs.Counter {
	syncsOnce.Do(func() { syncsVal = obs.Default().Counter("pagefile_syncs_total") })
	return syncsVal
}

// Snapshot returns an atomically-read copy of the counters, safe to take
// while other goroutines are still counting.
func (s *Stats) Snapshot() Stats {
	return Stats{
		RandomReads: atomic.LoadUint64(&s.RandomReads),
		SeqReads:    atomic.LoadUint64(&s.SeqReads),
		Writes:      atomic.LoadUint64(&s.Writes),
		Allocs:      atomic.LoadUint64(&s.Allocs),
		Frees:       atomic.LoadUint64(&s.Frees),
		Syncs:       atomic.LoadUint64(&s.Syncs),
	}
}

// Reset zeroes all counters (used between the build and query phases of an
// experiment).
func (s *Stats) Reset() {
	atomic.StoreUint64(&s.RandomReads, 0)
	atomic.StoreUint64(&s.SeqReads, 0)
	atomic.StoreUint64(&s.Writes, 0)
	atomic.StoreUint64(&s.Allocs, 0)
	atomic.StoreUint64(&s.Frees, 0)
	atomic.StoreUint64(&s.Syncs, 0)
}

// Reads returns the total number of reads of either kind.
func (s *Stats) Reads() uint64 {
	return atomic.LoadUint64(&s.RandomReads) + atomic.LoadUint64(&s.SeqReads)
}

// NormalizedIO returns the paper's normalized I/O cost for these stats given
// the size (in pages) of a sequential scan of the whole file: random reads
// count 1, sequential reads 1/10, divided by the scan size. A sequential
// scan of the file therefore scores exactly 0.1.
func (s *Stats) NormalizedIO(scanPages int) float64 {
	if scanPages == 0 {
		return 0
	}
	random := atomic.LoadUint64(&s.RandomReads)
	seq := atomic.LoadUint64(&s.SeqReads)
	return (float64(random) + float64(seq)/10) / float64(scanPages)
}

// File is a collection of fixed-size pages. Implementations must allow any
// number of concurrent ReadPage/ReadPageSeq/Stats calls; mutating calls
// (WritePage, Allocate, Free, Close) require external exclusion against all
// other calls, which the index-level reader/writer locking above this layer
// provides. All implementations in this package count through the atomic
// Stats methods, so access accounting stays exact under concurrent readers.
type File interface {
	// PageSize returns the fixed page size in bytes.
	PageSize() int
	// ReadPage fills buf (which must be PageSize bytes) with the page's
	// contents and counts a random read.
	ReadPage(id PageID, buf []byte) error
	// ReadPageSeq is ReadPage but counted as a sequential access; scans use
	// it when walking pages in order.
	ReadPageSeq(id PageID, buf []byte) error
	// WritePage stores data (at most PageSize bytes) as the page's contents.
	WritePage(id PageID, data []byte) error
	// Allocate returns a fresh page id, reusing freed pages first.
	Allocate() (PageID, error)
	// Free returns a page to the allocator.
	Free(id PageID) error
	// NumPages returns the number of live (allocated, unfreed) pages.
	NumPages() int
	// Sync makes every previously acknowledged write durable: after Sync
	// returns nil, the writes survive a process kill or power loss. A write
	// that has only been acknowledged — not synced — may be lost or torn by
	// a crash. Like WritePage, Sync requires external exclusion against
	// mutating calls.
	Sync() error
	// Stats exposes the operation counters for this file.
	Stats() *Stats
	// Close releases underlying resources.
	Close() error
}

// TxFile is the optional transactional extension a write-ahead-logged file
// implements. Callers bracket a group of writes with BeginTx and SealTx;
// SealTx returning nil means the whole group is durable (will survive a
// crash) and will be replayed atomically on recovery. SealTx returning an
// error means none of the group is promised — the caller must restore its
// in-memory state and re-issue the pre-images as plain writes. Writes made
// outside a bracket are logged as single-write transactions. AbortTx drops
// a bracket without logging it. The core tree detects this interface at
// open time and, when present, seals a transaction per mutation before
// acknowledging it.
type TxFile interface {
	File
	BeginTx()
	SealTx() error
	AbortTx()
}

// ReadOnlyFile marks a File implementation that rejects all mutations (for
// example the mmap backend). Layers that need write access up front — the
// write-ahead log, most prominently — check for it at open time so callers
// get one typed error instead of a late WritePage failure mid-transaction.
type ReadOnlyFile interface {
	ReadOnly() bool
}

// IsReadOnly reports whether f declares itself read-only. Wrappers that
// embed the File interface do not forward the marker, so this reliably
// detects only a directly read-only base — which is exactly the case the
// WAL needs to reject.
func IsReadOnly(f File) bool {
	ro, ok := f.(ReadOnlyFile)
	return ok && ro.ReadOnly()
}

// Errors returned by File implementations.
var (
	ErrPageBounds = errors.New("pagefile: page id out of bounds")
	ErrPageFreed  = errors.New("pagefile: access to freed page")
	ErrTooLarge   = errors.New("pagefile: write exceeds page size")
	ErrClosed     = errors.New("pagefile: file is closed")
	ErrReadOnly   = errors.New("pagefile: file is read-only")
)

// MemFile is an in-memory File. It is what the benchmark harness uses: the
// paper's I/O metric is a *count* of page accesses, so the measurements do
// not require physically spinning a disk. Reads are safe to run
// concurrently (page contents are only read and counters are atomic);
// writes need external exclusion per the File contract.
type MemFile struct {
	pageSize int
	pages    [][]byte
	freed    []PageID
	isFree   map[PageID]bool
	stats    Stats
	closed   bool
}

// NewMemFile creates an in-memory page file with the given page size.
func NewMemFile(pageSize int) *MemFile {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	return &MemFile{pageSize: pageSize, isFree: make(map[PageID]bool)}
}

// PageSize implements File.
func (f *MemFile) PageSize() int { return f.pageSize }

// Stats implements File.
func (f *MemFile) Stats() *Stats { return &f.stats }

// NumPages implements File.
func (f *MemFile) NumPages() int { return len(f.pages) - len(f.freed) }

func (f *MemFile) check(id PageID) error {
	if f.closed {
		return ErrClosed
	}
	if int(id) >= len(f.pages) {
		return fmt.Errorf("%w: %d >= %d", ErrPageBounds, id, len(f.pages))
	}
	if f.isFree[id] {
		return fmt.Errorf("%w: %d", ErrPageFreed, id)
	}
	return nil
}

// ReadPage implements File.
func (f *MemFile) ReadPage(id PageID, buf []byte) error {
	if err := f.check(id); err != nil {
		return err
	}
	f.stats.AddRandomReads(1)
	copy(buf, f.pages[id])
	return nil
}

// ReadPageSeq implements File.
func (f *MemFile) ReadPageSeq(id PageID, buf []byte) error {
	if err := f.check(id); err != nil {
		return err
	}
	f.stats.AddSeqReads(1)
	copy(buf, f.pages[id])
	return nil
}

// WritePage implements File.
func (f *MemFile) WritePage(id PageID, data []byte) error {
	if err := f.check(id); err != nil {
		return err
	}
	if len(data) > f.pageSize {
		return fmt.Errorf("%w: %d > %d", ErrTooLarge, len(data), f.pageSize)
	}
	f.stats.AddWrites(1)
	page := f.pages[id]
	n := copy(page, data)
	for i := n; i < len(page); i++ {
		page[i] = 0
	}
	return nil
}

// Allocate implements File.
func (f *MemFile) Allocate() (PageID, error) {
	if f.closed {
		return InvalidPage, ErrClosed
	}
	f.stats.AddAllocs(1)
	if n := len(f.freed); n > 0 {
		id := f.freed[n-1]
		f.freed = f.freed[:n-1]
		delete(f.isFree, id)
		return id, nil
	}
	id := PageID(len(f.pages))
	f.pages = append(f.pages, make([]byte, f.pageSize))
	return id, nil
}

// Free implements File.
func (f *MemFile) Free(id PageID) error {
	if err := f.check(id); err != nil {
		return err
	}
	f.stats.AddFrees(1)
	f.freed = append(f.freed, id)
	f.isFree[id] = true
	return nil
}

// Sync implements File. Memory is as durable as a MemFile gets, so this
// only counts the call; CrashFile is the in-memory backend that actually
// distinguishes acknowledged from durable state.
func (f *MemFile) Sync() error {
	if f.closed {
		return ErrClosed
	}
	f.stats.AddSyncs(1)
	return nil
}

// Close implements File.
func (f *MemFile) Close() error {
	f.closed = true
	f.pages = nil
	return nil
}

// DiskFile is a File backed by an operating-system file. Pages live at
// offset id*PageSize. The free list is kept in memory; a production system
// would persist it, but index lifetime here is process lifetime.
type DiskFile struct {
	mu       sync.Mutex
	pageSize int
	f        *os.File
	nPages   int
	freed    []PageID
	isFree   map[PageID]bool
	stats    Stats
}

// CreateDiskFile creates (truncating) an on-disk page file at path.
func CreateDiskFile(path string, pageSize int) (*DiskFile, error) {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pagefile: create %s: %w", path, err)
	}
	return &DiskFile{pageSize: pageSize, f: f, isFree: make(map[PageID]bool)}, nil
}

// OpenDiskFile attaches to an existing on-disk page file, deriving the page
// count from its size. Pages freed in the previous session are treated as
// live (the free list is not persisted); allocation simply resumes at the
// end of the file.
func OpenDiskFile(path string, pageSize int) (*DiskFile, error) {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pagefile: open %s: %w", path, err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("pagefile: stat %s: %w", path, err)
	}
	if info.Size()%int64(pageSize) != 0 {
		f.Close()
		return nil, fmt.Errorf("pagefile: %s size %d is not a multiple of page size %d", path, info.Size(), pageSize)
	}
	return &DiskFile{
		pageSize: pageSize,
		f:        f,
		nPages:   int(info.Size() / int64(pageSize)),
		isFree:   make(map[PageID]bool),
	}, nil
}

// PageSize implements File.
func (f *DiskFile) PageSize() int { return f.pageSize }

// Stats implements File.
func (f *DiskFile) Stats() *Stats { return &f.stats }

// NumPages implements File.
func (f *DiskFile) NumPages() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.nPages - len(f.freed)
}

func (f *DiskFile) check(id PageID) error {
	if f.f == nil {
		return ErrClosed
	}
	if int(id) >= f.nPages {
		return fmt.Errorf("%w: %d >= %d", ErrPageBounds, id, f.nPages)
	}
	if f.isFree[id] {
		return fmt.Errorf("%w: %d", ErrPageFreed, id)
	}
	return nil
}

func (f *DiskFile) read(id PageID, buf []byte) error {
	if err := f.check(id); err != nil {
		return err
	}
	_, err := f.f.ReadAt(buf[:f.pageSize], int64(id)*int64(f.pageSize))
	if err != nil {
		return fmt.Errorf("pagefile: read page %d: %w", id, err)
	}
	return nil
}

// ReadPage implements File.
func (f *DiskFile) ReadPage(id PageID, buf []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stats.AddRandomReads(1)
	return f.read(id, buf)
}

// ReadPageSeq implements File.
func (f *DiskFile) ReadPageSeq(id PageID, buf []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stats.AddSeqReads(1)
	return f.read(id, buf)
}

// WritePage implements File.
func (f *DiskFile) WritePage(id PageID, data []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.check(id); err != nil {
		return err
	}
	if len(data) > f.pageSize {
		return fmt.Errorf("%w: %d > %d", ErrTooLarge, len(data), f.pageSize)
	}
	f.stats.AddWrites(1)
	page := make([]byte, f.pageSize)
	copy(page, data)
	if _, err := f.f.WriteAt(page, int64(id)*int64(f.pageSize)); err != nil {
		return fmt.Errorf("pagefile: write page %d: %w", id, err)
	}
	return nil
}

// Allocate implements File.
func (f *DiskFile) Allocate() (PageID, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.f == nil {
		return InvalidPage, ErrClosed
	}
	f.stats.AddAllocs(1)
	if n := len(f.freed); n > 0 {
		id := f.freed[n-1]
		f.freed = f.freed[:n-1]
		delete(f.isFree, id)
		return id, nil
	}
	id := PageID(f.nPages)
	f.nPages++
	if err := f.f.Truncate(int64(f.nPages) * int64(f.pageSize)); err != nil {
		return InvalidPage, fmt.Errorf("pagefile: grow: %w", err)
	}
	return id, nil
}

// Free implements File.
func (f *DiskFile) Free(id PageID) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.check(id); err != nil {
		return err
	}
	f.stats.AddFrees(1)
	f.freed = append(f.freed, id)
	f.isFree[id] = true
	return nil
}

// Sync implements File by fsyncing the underlying OS file.
func (f *DiskFile) Sync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.f == nil {
		return ErrClosed
	}
	f.stats.AddSyncs(1)
	if err := f.f.Sync(); err != nil {
		return fmt.Errorf("pagefile: sync: %w", err)
	}
	return nil
}

// Close implements File.
func (f *DiskFile) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.f == nil {
		return nil
	}
	err := f.f.Close()
	f.f = nil
	return err
}
