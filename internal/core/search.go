package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"hybridtree/internal/dist"
	"hybridtree/internal/geom"
	"hybridtree/internal/obs"
	"hybridtree/internal/pagefile"
	"hybridtree/internal/pqueue"
)

// Entry is one stored record returned by a search.
type Entry struct {
	Point geom.Point
	RID   RecordID
}

// Neighbor is a search result annotated with its distance to the query.
type Neighbor struct {
	Entry
	Dist float64
}

// The search implementations below are allocation-free on the cached-node
// path: inter-node traversal runs over an explicit pending stack (or the
// best-first frontier heap) of visitRefs whose bounding regions live in the
// QueryContext's rect arena, and the intra-node kd walk is an iterative loop
// over reusable kdFrames instead of a recursive closure. Traversal order —
// and therefore result order and the Stats accounting — is identical to the
// recursive implementation: a node's surviving kd-leaves are pushed in
// reverse kd order so the stack pops them in kd order, exactly the
// depth-first sequence recursion produced.
//
// Instrumentation rides the same loops: traversal counts accumulate as
// plain ints in the context's tally (flushed to shared atomic counters once
// per query), and when a trace is active every visited node gets a span,
// with kd decisions and prune verdicts charged to the span of the node
// where they happened. With tracing off qc.tr is nil and every tr.* call is
// an inlined nil check, which is what keeps TestSearchZeroAlloc at zero.

// getqTraced reads a node for a query. When the query carries a live trace
// it also attributes the fetch + decode wall time to the trace's page-read
// stage; untraced queries take the bare getq call with no clock reads.
func (t *Tree) getqTraced(tr *obs.Trace, id pagefile.PageID, epoch uint64) (*node, bool, error) {
	if tr == nil {
		return t.store.getq(id, epoch)
	}
	t0 := time.Now()
	n, hit, err := t.store.getq(id, epoch)
	tr.AddPageRead(int64(time.Since(t0)))
	return n, hit, err
}

// SearchBox returns every entry whose vector lies inside q (boundaries
// inclusive) — the feature-based bounding-box query of Section 3.5, and the
// query type of the paper's Figures 5 and 6.
func (t *Tree) SearchBox(q geom.Rect) ([]Entry, error) {
	c := t.getCtx()
	defer t.putCtx(c)
	return t.SearchBoxCtx(c, q, nil)
}

// SearchBoxCtx is SearchBox with caller-managed scratch state: results are
// appended to dst (which may be nil or a recycled buffer). A caller that
// reuses both c and dst runs the cached-node query path without allocating.
// On error the entries appended so far remain in the returned slice.
func (t *Tree) SearchBoxCtx(c *QueryContext, q geom.Rect, dst []Entry) ([]Entry, error) {
	return t.SearchBoxContext(nil, c, q, Budget{}, dst)
}

// SearchBoxContext is SearchBoxCtx under a request lifecycle: cancellation
// and the context deadline are checked once per node visit (abandoning the
// query returns ctx.Err() with dst unchanged past its input length), and
// budget exhaustion returns *ErrBudgetExceeded with the entries found so far
// kept in dst — a valid subset of the full answer. A nil ctx and zero
// Budget run the plain unarmed path.
func (t *Tree) SearchBoxContext(ctx context.Context, c *QueryContext, q geom.Rect, b Budget, dst []Entry) ([]Entry, error) {
	if q.Dim() != t.cfg.Dim {
		return dst, fmt.Errorf("core: query has dim %d, tree expects %d", q.Dim(), t.cfg.Dim)
	}
	qc := &c.qc
	qc.acquire(t.cfg.Dim)
	defer qc.release()
	t.pinCtx(qc)
	qc.arm(ctx, b)
	_, start := t.beginQuery(qc, opBox)
	base := len(dst)
	dst, err := t.runBox(qc, q, dst)
	if err != nil {
		if isCtxErr(err) {
			dst = dst[:base]
		} else if be, ok := err.(*ErrBudgetExceeded); ok {
			be.Partial = len(dst) - base
		}
	}
	t.finishQuery(qc, opBox, start, len(dst)-base, err)
	return dst, err
}

// runBox is the box query's traversal loop, shared by SearchBoxCtx and
// ExplainBox (which supplies its own trace via qc.tr).
func (t *Tree) runBox(qc *queryCtx, q geom.Rect, dst []Entry) ([]Entry, error) {
	tr := qc.tr
	pending := append(qc.pending, visitRef{child: qc.ver.root, slot: qc.arena.put(t.cfg.Space), span: -1})
	for len(pending) > 0 {
		if err := qc.checkVisit(opBox); err != nil {
			qc.pending = pending[:0]
			return dst, err
		}
		v := pending[len(pending)-1]
		pending = pending[:len(pending)-1]
		qc.arena.copyOut(v.slot, qc.walk)
		qc.arena.release(v.slot)
		n, hit, err := t.getqTraced(tr, v.child, qc.ver.epoch)
		if err != nil {
			qc.pending = pending[:0]
			return dst, err
		}
		span := tr.Visit(v.span, uint32(v.child), n.leaf, hit)
		if n.leaf {
			qc.tally.scanned += n.count()
			tr.Scan(span, n.count())
			var scan0 time.Time
			if tr != nil {
				scan0 = time.Now()
			}
			// One linear pass over the slab collects the contained indices;
			// the containment test matches geom.Rect.Contains exactly.
			qc.hits = dist.FilterBoxSlab(q.Lo, q.Hi, n.vals, n.dim, qc.hits[:0])
			for _, i := range qc.hits {
				tr.Hit(span)
				dst = append(dst, Entry{Point: n.point(int(i)), RID: n.rids[i]})
			}
			if tr != nil {
				tr.AddCompute(int64(time.Since(scan0)))
			}
			continue
		}
		if n.kdRoot == kdNone {
			continue
		}
		mark := len(pending)
		pending = t.kdWalkBox(qc, n, q, span, pending)
		reverseVisits(pending[mark:])
	}
	qc.pending = pending[:0]
	return dst, nil
}

// kdWalkBox runs the box query's intra-node kd walk over index node n,
// narrowing one boundary of qc.walk per internal record (and re-testing only
// that boundary — the "a boundary is checked only once" property of Section
// 3.1) and appending one visit per surviving kd-leaf, in kd order. Leaves
// pass the second step of the paper's two-step overlap check (the encoded
// live space) before being kept. span is the current node's trace span.
func (t *Tree) kdWalkBox(qc *queryCtx, n *node, q geom.Rect, span int32, pending []visitRef) []visitRef {
	br := qc.walk
	tr := qc.tr
	kd, els, space := n.kd, qc.ver.els, t.cfg.Space
	st := append(qc.frames, kdFrame{idx: n.kdRoot})
	for len(st) > 0 {
		f := &st[len(st)-1]
		k := &kd[f.idx]
		switch f.stage {
		case 0:
			if k.isLeaf() {
				st = st[:len(st)-1]
				live, ok := els.Get(uint32(k.Child), space)
				if ok {
					qc.tally.elsHits++
					tr.ELSHit(span)
					if !live.Intersects(q) {
						qc.tally.elsPrunes++
						tr.ELSPrune(span)
						continue
					}
				}
				qc.tally.descents++
				tr.Descend(span)
				pending = append(pending, visitRef{child: k.Child, slot: qc.arena.put(br), span: span})
				continue
			}
			d := int(k.Dim)
			f.saved = br.Hi[d]
			f.stage = 1
			if k.Lsp < br.Hi[d] {
				br.Hi[d] = k.Lsp
			}
			if q.Lo[d] <= br.Hi[d] && br.Hi[d] >= br.Lo[d] {
				tr.KDLeft(span)
				st = append(st, kdFrame{idx: k.Left})
			} else {
				qc.tally.kdPrunes++
				tr.KDPrune(span)
			}
		case 1:
			d := int(k.Dim)
			br.Hi[d] = f.saved
			f.saved = br.Lo[d]
			f.stage = 2
			if k.Rsp > br.Lo[d] {
				br.Lo[d] = k.Rsp
			}
			if q.Hi[d] >= br.Lo[d] && br.Hi[d] >= br.Lo[d] {
				tr.KDRight(span)
				st = append(st, kdFrame{idx: k.Right})
			} else {
				qc.tally.kdPrunes++
				tr.KDPrune(span)
			}
		default:
			br.Lo[int(k.Dim)] = f.saved
			st = st[:len(st)-1]
		}
	}
	qc.frames = st[:0]
	return pending
}

// SearchPoint returns the record ids stored exactly at p.
func (t *Tree) SearchPoint(p geom.Point) ([]RecordID, error) {
	entries, err := t.SearchBox(geom.Rect{Lo: p, Hi: p})
	if err != nil {
		return nil, err
	}
	rids := make([]RecordID, 0, len(entries))
	for _, e := range entries {
		rids = append(rids, e.RID)
	}
	return rids, nil
}

// SearchRange returns every entry within distance radius of q under metric
// m — the distance-based range query of Section 3.5. The metric is supplied
// per query: nothing about the tree is specialized to it.
func (t *Tree) SearchRange(q geom.Point, radius float64, m dist.Metric) ([]Neighbor, error) {
	c := t.getCtx()
	defer t.putCtx(c)
	return t.SearchRangeCtx(c, q, radius, m, nil)
}

// SearchRangeCtx is SearchRange with caller-managed scratch state and result
// buffer (see SearchBoxCtx). When m supports the squared-distance fast path
// (dist.AsSquared), membership and pruning compare squared distances and
// each reported neighbor costs a single square root; leaf scans abandon a
// candidate as soon as its partial sum exceeds the squared radius.
func (t *Tree) SearchRangeCtx(c *QueryContext, q geom.Point, radius float64, m dist.Metric, dst []Neighbor) ([]Neighbor, error) {
	return t.SearchRangeContext(nil, c, q, radius, m, Budget{}, dst)
}

// SearchRangeContext is SearchRangeCtx under a request lifecycle (see
// SearchBoxContext): ctx abandonment discards partial results and returns
// ctx.Err(); budget exhaustion keeps the neighbors found so far in dst — a
// valid subset of the full answer — and returns *ErrBudgetExceeded.
func (t *Tree) SearchRangeContext(ctx context.Context, c *QueryContext, q geom.Point, radius float64, m dist.Metric, b Budget, dst []Neighbor) ([]Neighbor, error) {
	if len(q) != t.cfg.Dim {
		return dst, fmt.Errorf("core: query has dim %d, tree expects %d", len(q), t.cfg.Dim)
	}
	if radius < 0 {
		return dst, fmt.Errorf("core: negative radius %g", radius)
	}
	qc := &c.qc
	qc.acquire(t.cfg.Dim)
	defer qc.release()
	t.pinCtx(qc)
	qc.arm(ctx, b)
	tr, start := t.beginQuery(qc, opRange)
	base := len(dst)

	sqm, useSq := dist.AsSquared(m)
	slm, useSlab := dist.AsSlab(m)
	bound := radius
	if useSq {
		bound = radius * radius
	}

	pending := append(qc.pending, visitRef{child: qc.ver.root, slot: qc.arena.put(t.cfg.Space), span: -1})
	for len(pending) > 0 {
		if err := qc.checkVisit(opRange); err != nil {
			qc.pending = pending[:0]
			if isCtxErr(err) {
				dst = dst[:base]
			} else if be, ok := err.(*ErrBudgetExceeded); ok {
				be.Partial = len(dst) - base
			}
			t.finishQuery(qc, opRange, start, len(dst)-base, err)
			return dst, err
		}
		v := pending[len(pending)-1]
		pending = pending[:len(pending)-1]
		qc.arena.copyOut(v.slot, qc.walk)
		qc.arena.release(v.slot)
		n, hit, err := t.getqTraced(tr, v.child, qc.ver.epoch)
		if err != nil {
			qc.pending = pending[:0]
			t.finishQuery(qc, opRange, start, len(dst)-base, err)
			return dst, err
		}
		span := tr.Visit(v.span, uint32(v.child), n.leaf, hit)
		if n.leaf {
			qc.tally.scanned += n.count()
			tr.Scan(span, n.count())
			var scan0 time.Time
			if tr != nil {
				scan0 = time.Now()
			}
			switch {
			case useSlab:
				// Batch kernel: one linear pass over the slab with
				// partial-distance abandonment at the squared radius.
				// Accepted values (<= bound) are bit-identical to the
				// per-point DistanceSqBounded calls.
				out := qc.distSlab(n.count())
				slm.DistanceSqSlab(q, n.vals, n.dim, bound, out)
				for i, d2 := range out {
					if d2 <= bound {
						tr.Hit(span)
						dst = append(dst, Neighbor{Entry: Entry{Point: n.point(i), RID: n.rids[i]}, Dist: math.Sqrt(d2)})
					}
				}
			case useSq:
				for i := 0; i < n.count(); i++ {
					if d2 := sqm.DistanceSqBounded(q, n.point(i), bound); d2 <= bound {
						tr.Hit(span)
						dst = append(dst, Neighbor{Entry: Entry{Point: n.point(i), RID: n.rids[i]}, Dist: math.Sqrt(d2)})
					}
				}
			default:
				for i := 0; i < n.count(); i++ {
					if d := m.Distance(q, n.point(i)); d <= radius {
						tr.Hit(span)
						dst = append(dst, Neighbor{Entry: Entry{Point: n.point(i), RID: n.rids[i]}, Dist: d})
					}
				}
			}
			if tr != nil {
				tr.AddCompute(int64(time.Since(scan0)))
			}
			continue
		}
		if n.kdRoot == kdNone {
			continue
		}
		mark := len(pending)
		pending = t.kdWalkDist(qc, n, q, m, sqm, useSq, bound, span, pending)
		reverseVisits(pending[mark:])
	}
	qc.pending = pending[:0]
	t.finishQuery(qc, opRange, start, len(dst)-base, nil)
	return dst, nil
}

// kdWalkDist is the distance-range query's intra-node kd walk: surviving
// kd-leaves are those whose region (mapped BR ∩ encoded live space, a
// strictly tighter bound than the max of the two separate MINDISTs) lies
// within bound of q. bound and the MINDIST computation are in squared space
// when useSq is set.
func (t *Tree) kdWalkDist(qc *queryCtx, n *node, q geom.Point, m dist.Metric, sqm dist.SquaredMetric, useSq bool, bound float64, span int32, pending []visitRef) []visitRef {
	br := qc.walk
	tr := qc.tr
	kd, els, space := n.kd, qc.ver.els, t.cfg.Space
	st := append(qc.frames, kdFrame{idx: n.kdRoot})
	for len(st) > 0 {
		f := &st[len(st)-1]
		k := &kd[f.idx]
		switch f.stage {
		case 0:
			if k.isLeaf() {
				st = st[:len(st)-1]
				lb := 0.0
				if live, ok := els.Get(uint32(k.Child), space); ok {
					qc.tally.elsHits++
					tr.ELSHit(span)
					if !intersectInto(&qc.scratch, br, live) {
						qc.tally.elsPrunes++
						tr.ELSPrune(span)
						continue
					}
					if useSq {
						lb = sqm.MinDistRectSq(q, qc.scratch)
					} else {
						lb = m.MinDistRect(q, qc.scratch)
					}
				} else if useSq {
					lb = sqm.MinDistRectSq(q, br)
				} else {
					lb = m.MinDistRect(q, br)
				}
				if lb <= bound {
					qc.tally.descents++
					tr.Descend(span)
					pending = append(pending, visitRef{child: k.Child, slot: qc.arena.put(br), span: span})
				} else {
					qc.tally.distPrunes++
					tr.DistPrune(span)
				}
				continue
			}
			d := int(k.Dim)
			f.saved = br.Hi[d]
			f.stage = 1
			if k.Lsp < br.Hi[d] {
				br.Hi[d] = k.Lsp
			}
			if br.Hi[d] >= br.Lo[d] {
				tr.KDLeft(span)
				st = append(st, kdFrame{idx: k.Left})
			} else {
				qc.tally.kdPrunes++
				tr.KDPrune(span)
			}
		case 1:
			d := int(k.Dim)
			br.Hi[d] = f.saved
			f.saved = br.Lo[d]
			f.stage = 2
			if k.Rsp > br.Lo[d] {
				br.Lo[d] = k.Rsp
			}
			if br.Hi[d] >= br.Lo[d] {
				tr.KDRight(span)
				st = append(st, kdFrame{idx: k.Right})
			} else {
				qc.tally.kdPrunes++
				tr.KDPrune(span)
			}
		default:
			br.Lo[int(k.Dim)] = f.saved
			st = st[:len(st)-1]
		}
	}
	qc.frames = st[:0]
	return pending
}

// SearchKNN returns the k entries nearest to q under metric m, closest
// first, using best-first (Hjaltason–Samet) traversal: nodes are expanded
// in order of the MINDIST between q and their (live-space-tightened) BRs,
// stopping when the next node cannot beat the current k-th distance.
func (t *Tree) SearchKNN(q geom.Point, k int, m dist.Metric) ([]Neighbor, error) {
	c := t.getCtx()
	defer t.putCtx(c)
	return t.SearchKNNCtx(c, q, k, m, nil)
}

// SearchKNNCtx is SearchKNN with caller-managed scratch state and result
// buffer (see SearchBoxCtx): the k results are appended to dst.
func (t *Tree) SearchKNNCtx(c *QueryContext, q geom.Point, k int, m dist.Metric, dst []Neighbor) ([]Neighbor, error) {
	return t.searchKNN(nil, c, q, k, m, 0, Budget{}, dst)
}

// SearchKNNContext is SearchKNNCtx under a request lifecycle (see
// SearchBoxContext). Budget exhaustion degrades rather than fails: the
// best-found-so-far neighbors are appended to dst, sorted and with true
// (non-squared) distances — a valid answer to a smaller effort — alongside
// the *ErrBudgetExceeded. Context abandonment returns ctx.Err() with dst
// unchanged past its input length.
func (t *Tree) SearchKNNContext(ctx context.Context, c *QueryContext, q geom.Point, k int, m dist.Metric, b Budget, dst []Neighbor) ([]Neighbor, error) {
	return t.searchKNN(ctx, c, q, k, m, 0, b, dst)
}

// searchKNN is the shared exact/(1+epsilon)-approximate best-first search;
// epsilon = 0 is exact. When m supports the squared-distance fast path,
// frontier priorities, pruning bounds and leaf scans all work on squared
// distances (with partial-distance early abandonment against the current
// k-th best) and only the k reported results pay a square root.
func (t *Tree) searchKNN(ctx context.Context, c *QueryContext, q geom.Point, k int, m dist.Metric, epsilon float64, b Budget, dst []Neighbor) ([]Neighbor, error) {
	if len(q) != t.cfg.Dim {
		return dst, fmt.Errorf("core: query has dim %d, tree expects %d", len(q), t.cfg.Dim)
	}
	if k < 1 {
		return dst, fmt.Errorf("core: k must be >= 1, got %d", k)
	}
	if epsilon < 0 {
		return dst, fmt.Errorf("core: epsilon %g must be >= 0", epsilon)
	}
	qc := &c.qc
	qc.acquire(t.cfg.Dim)
	defer qc.release()
	t.pinCtx(qc)
	qc.arm(ctx, b)
	tr, start := t.beginQuery(qc, opKNN)
	base := len(dst)

	sqm, useSq := dist.AsSquared(m)
	slm, useSlab := dist.AsSlab(m)
	// shrink scales the pruning bound for approximate search; for squared
	// distances the factor is squared too. epsilon = 0 gives shrink = 1,
	// and x*1 == x for floats, so the exact path is untouched.
	shrink := 1 / (1 + epsilon)
	if useSq {
		shrink *= shrink
	}

	pq := &qc.pq
	best := qc.kbest(k)
	pq.Push(visitRef{child: qc.ver.root, slot: qc.arena.put(t.cfg.Space), span: -1}, 0)
	for pq.Len() > 0 {
		if lerr := qc.checkVisit(opKNN); lerr != nil {
			if be, ok := lerr.(*ErrBudgetExceeded); ok {
				// Degrade to best-found-so-far: every neighbor in the
				// collector is real, sorted and correctly ranked — it is
				// the exact answer a smaller tree would have given.
				prev := len(dst)
				dst = flushKNN(best, useSq, dst)
				be.Partial = len(dst) - prev
				t.finishQuery(qc, opKNN, start, len(dst)-prev, lerr)
				return dst, lerr
			}
			t.finishQuery(qc, opKNN, start, 0, lerr)
			return dst, lerr
		}
		v, mindist := pq.Pop()
		if best.Full() && mindist > best.Bound()*shrink {
			break
		}
		qc.arena.copyOut(v.slot, qc.walk)
		qc.arena.release(v.slot)
		n, hit, err := t.getqTraced(tr, v.child, qc.ver.epoch)
		if err != nil {
			t.finishQuery(qc, opKNN, start, 0, err)
			return dst, err
		}
		span := tr.Visit(v.span, uint32(v.child), n.leaf, hit)
		if n.leaf {
			qc.tally.scanned += n.count()
			tr.Scan(span, n.count())
			var scan0 time.Time
			if tr != nil {
				scan0 = time.Now()
			}
			switch {
			case useSlab:
				// Batch kernel against the bound at leaf entry. A candidate
				// whose exact distance beats only the *stale* bound reaches
				// Offer, which rejects it with no state change (priority >=
				// current worst) — exactly the candidates the per-point loop
				// skipped after refreshing the bound, so results and Hit
				// counts are identical to the scalar path.
				bound := math.Inf(1)
				if best.Full() {
					bound = best.Bound()
				}
				out := qc.distSlab(n.count())
				slm.DistanceSqSlab(q, n.vals, n.dim, bound, out)
				for i, d2 := range out {
					if d2 > bound {
						continue // abandoned or beaten; Offer would reject it
					}
					if best.Offer(Neighbor{Entry: Entry{Point: n.point(i), RID: n.rids[i]}, Dist: d2}, d2) {
						tr.Hit(span)
					}
				}
			case useSq:
				bound := math.Inf(1)
				if best.Full() {
					bound = best.Bound()
				}
				for i := 0; i < n.count(); i++ {
					d2 := sqm.DistanceSqBounded(q, n.point(i), bound)
					if d2 > bound {
						continue // abandoned or beaten; Offer would reject it
					}
					if best.Offer(Neighbor{Entry: Entry{Point: n.point(i), RID: n.rids[i]}, Dist: d2}, d2) {
						tr.Hit(span)
					}
					if best.Full() {
						bound = best.Bound()
					}
				}
			default:
				for i := 0; i < n.count(); i++ {
					d := m.Distance(q, n.point(i))
					if best.Offer(Neighbor{Entry: Entry{Point: n.point(i), RID: n.rids[i]}, Dist: d}, d) {
						tr.Hit(span)
					}
				}
			}
			if tr != nil {
				tr.AddCompute(int64(time.Since(scan0)))
			}
			continue
		}
		if n.kdRoot != kdNone {
			t.kdWalkKNN(qc, n, q, m, sqm, useSq, best, shrink, span)
		}
	}
	if dst == nil {
		dst = make([]Neighbor, 0, best.Len())
	}
	base = len(dst)
	dst = best.AppendSorted(dst)
	if useSq {
		for i := base; i < len(dst); i++ {
			dst[i].Dist = math.Sqrt(dst[i].Dist)
		}
	}
	t.finishQuery(qc, opKNN, start, len(dst)-base, nil)
	return dst, nil
}

// flushKNN appends the collector's neighbors to dst, closest first,
// converting squared distances back to true ones.
func flushKNN(best *pqueue.KBest[Neighbor], useSq bool, dst []Neighbor) []Neighbor {
	if dst == nil {
		dst = make([]Neighbor, 0, best.Len())
	}
	base := len(dst)
	dst = best.AppendSorted(dst)
	if useSq {
		for i := base; i < len(dst); i++ {
			dst[i].Dist = math.Sqrt(dst[i].Dist)
		}
	}
	return dst
}

// kdWalkKNN is the k-NN intra-node kd walk: each surviving kd-leaf joins
// the best-first frontier with its (live-space-tightened) MINDIST as
// priority, unless the current k-th best already rules it out.
func (t *Tree) kdWalkKNN(qc *queryCtx, n *node, q geom.Point, m dist.Metric, sqm dist.SquaredMetric, useSq bool, best *pqueue.KBest[Neighbor], shrink float64, span int32) {
	br := qc.walk
	tr := qc.tr
	kd, els, space := n.kd, qc.ver.els, t.cfg.Space
	st := append(qc.frames, kdFrame{idx: n.kdRoot})
	for len(st) > 0 {
		f := &st[len(st)-1]
		k := &kd[f.idx]
		switch f.stage {
		case 0:
			if k.isLeaf() {
				st = st[:len(st)-1]
				var md float64
				if live, ok := els.Get(uint32(k.Child), space); ok {
					qc.tally.elsHits++
					tr.ELSHit(span)
					if !intersectInto(&qc.scratch, br, live) {
						qc.tally.elsPrunes++
						tr.ELSPrune(span)
						continue
					}
					if useSq {
						md = sqm.MinDistRectSq(q, qc.scratch)
					} else {
						md = m.MinDistRect(q, qc.scratch)
					}
				} else if useSq {
					md = sqm.MinDistRectSq(q, br)
				} else {
					md = m.MinDistRect(q, br)
				}
				if !best.Full() || md <= best.Bound()*shrink {
					qc.tally.heapPushes++
					tr.Descend(span)
					qc.pq.Push(visitRef{child: k.Child, slot: qc.arena.put(br), span: span}, md)
				} else {
					qc.tally.distPrunes++
					tr.DistPrune(span)
				}
				continue
			}
			d := int(k.Dim)
			f.saved = br.Hi[d]
			f.stage = 1
			if k.Lsp < br.Hi[d] {
				br.Hi[d] = k.Lsp
			}
			if br.Hi[d] >= br.Lo[d] {
				tr.KDLeft(span)
				st = append(st, kdFrame{idx: k.Left})
			} else {
				qc.tally.kdPrunes++
				tr.KDPrune(span)
			}
		case 1:
			d := int(k.Dim)
			br.Hi[d] = f.saved
			f.saved = br.Lo[d]
			f.stage = 2
			if k.Rsp > br.Lo[d] {
				br.Lo[d] = k.Rsp
			}
			if br.Hi[d] >= br.Lo[d] {
				tr.KDRight(span)
				st = append(st, kdFrame{idx: k.Right})
			} else {
				qc.tally.kdPrunes++
				tr.KDPrune(span)
			}
		default:
			br.Lo[int(k.Dim)] = f.saved
			st = st[:len(st)-1]
		}
	}
	qc.frames = st[:0]
}

// intersectInto writes the intersection of a and b into dst (which must
// have matching dimensionality) and reports whether it is non-empty.
func intersectInto(dst *geom.Rect, a, b geom.Rect) bool {
	for d := range dst.Lo {
		lo, hi := a.Lo[d], a.Hi[d]
		if b.Lo[d] > lo {
			lo = b.Lo[d]
		}
		if b.Hi[d] < hi {
			hi = b.Hi[d]
		}
		if lo > hi {
			return false
		}
		dst.Lo[d], dst.Hi[d] = lo, hi
	}
	return true
}
