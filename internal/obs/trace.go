package obs

import (
	"fmt"
	"strings"
	"time"
)

// Tracer produces per-operation traces. The query path asks the tracer for
// a *Trace at operation start; a nil result (the no-op tracer, or a sampler
// declining this query) disables recording for the whole operation at the
// cost of one nil check per event, keeping the traced-off hot path
// allocation-free.
type Tracer interface {
	StartTrace(op string) *Trace
}

type nopTracer struct{}

func (nopTracer) StartTrace(string) *Trace { return nil }

// Nop returns a tracer that records nothing. It exists so "tracing
// configured but disabled" and "no tracer" exercise the same code path —
// the overhead gate in core benchmarks compares exactly these two.
func Nop() Tracer { return nopTracer{} }

// Span is one visited node in a query's traversal tree. Parent is the index
// of the parent span in Trace.Spans (-1 for the root), so the tree is a
// flat array with no pointers. The counters record what happened while the
// traversal was positioned at this node: kd-path decisions at the lsp/rsp
// split positions (left/right branch taken, or subtree cut), live-space
// decode outcomes, prune/accept verdicts for child regions, and leaf scan
// results.
type Span struct {
	Node       uint32 `json:"node"`
	Parent     int32  `json:"parent"`
	Level      int32  `json:"level"`
	Leaf       bool   `json:"leaf,omitempty"`
	CacheHit   bool   `json:"cache_hit,omitempty"`
	KDLeft     int32  `json:"kd_left,omitempty"`     // left (lsp) branches taken
	KDRight    int32  `json:"kd_right,omitempty"`    // right (rsp) branches taken
	KDPruned   int32  `json:"kd_pruned,omitempty"`   // kd subtrees cut by the BR check
	ELSHits    int32  `json:"els_hits,omitempty"`    // live-space decodes that found an entry
	ELSPruned  int32  `json:"els_pruned,omitempty"`  // children cut by the live-space check
	DistPruned int32  `json:"dist_pruned,omitempty"` // children cut by a MINDIST bound
	Descents   int32  `json:"descents,omitempty"`    // children enqueued (stack or frontier)
	Scanned    int32  `json:"scanned,omitempty"`     // leaf entries examined
	Hits       int32  `json:"hits,omitempty"`        // leaf entries accepted
}

// StageSet is one operation's per-stage cost attribution: where the wall
// time went, joined to the single query rather than smeared across the
// registry's shared histograms. The stages mirror the pipeline a request
// crosses: waiting in an executor queue, fetching and decoding pages,
// fsyncing the WAL at commit, and the leaf-scan distance compute. Stage
// recording is active only while the operation carries a live trace, so
// the untraced hot path never pays for it.
type StageSet struct {
	QueueWaitNs int64 `json:"queue_wait_ns,omitempty"` // executor submit -> worker dequeue
	PageReadNs  int64 `json:"page_read_ns,omitempty"`  // node fetch + decode (hits and misses)
	PageReads   int32 `json:"page_reads,omitempty"`
	WALFsyncNs  int64 `json:"wal_fsync_ns,omitempty"` // commit seal incl. the log fsync
	WALFsyncs   int32 `json:"wal_fsyncs,omitempty"`
	ComputeNs   int64 `json:"compute_ns,omitempty"` // leaf-scan distance kernels
	ComputeOps  int32 `json:"compute_scans,omitempty"`
}

// Trace is the record of one operation: a span tree for queries, plus
// mutation-side counters (splits, reinserts, whether the undo log rolled
// the operation back). All methods are nil-receiver safe — a nil *Trace is
// the universal "not tracing" value — and a Trace is single-goroutine
// state: one operation, one owner, no atomics.
type Trace struct {
	Op         string        `json:"op"`
	Seq        uint64        `json:"seq,omitempty"`
	Start      time.Time     `json:"start"`
	Elapsed    time.Duration `json:"elapsed_ns"`
	Results    int           `json:"results"`
	Err        string        `json:"err,omitempty"`
	Splits     int32         `json:"splits,omitempty"`
	Reinserts  int32         `json:"reinserts,omitempty"`
	RolledBack bool          `json:"rolled_back,omitempty"`
	Stages     *StageSet     `json:"stages,omitempty"`
	Spans      []Span        `json:"spans,omitempty"`

	sink func(*Trace) // receives the finished trace (ring buffer); may be nil
}

// NewTrace returns an unsinked trace, for callers that consume the trace
// directly (ExplainBox) rather than through a Tracer.
func NewTrace(op string) *Trace { return &Trace{Op: op, Start: time.Now()} }

// Visit appends a span for a node read and returns its index, to be passed
// to the per-span recording methods and to child visits as their parent.
// Returns -1 on a nil trace.
func (t *Trace) Visit(parent int32, node uint32, leaf, cacheHit bool) int32 {
	if t == nil {
		return -1
	}
	var level int32
	if parent >= 0 {
		level = t.Spans[parent].Level + 1
	}
	t.Spans = append(t.Spans, Span{Node: node, Parent: parent, Level: level, Leaf: leaf, CacheHit: cacheHit})
	return int32(len(t.Spans) - 1)
}

func (t *Trace) span(i int32) *Span {
	return &t.Spans[i]
}

// KDLeft records a left (lsp-side) kd branch taken at span i.
func (t *Trace) KDLeft(i int32) {
	if t == nil || i < 0 {
		return
	}
	t.span(i).KDLeft++
}

// KDRight records a right (rsp-side) kd branch taken at span i.
func (t *Trace) KDRight(i int32) {
	if t == nil || i < 0 {
		return
	}
	t.span(i).KDRight++
}

// KDPrune records a kd subtree cut by the bounding-region check at span i.
func (t *Trace) KDPrune(i int32) {
	if t == nil || i < 0 {
		return
	}
	t.span(i).KDPruned++
}

// ELSHit records a live-space decode that found an encoded entry.
func (t *Trace) ELSHit(i int32) {
	if t == nil || i < 0 {
		return
	}
	t.span(i).ELSHits++
}

// ELSPrune records a child cut by the live-space check at span i.
func (t *Trace) ELSPrune(i int32) {
	if t == nil || i < 0 {
		return
	}
	t.span(i).ELSPruned++
}

// DistPrune records a child cut by a MINDIST bound at span i.
func (t *Trace) DistPrune(i int32) {
	if t == nil || i < 0 {
		return
	}
	t.span(i).DistPruned++
}

// Descend records a child enqueued for visiting (pending stack push for
// box/range queries, frontier heap push for k-NN) at span i.
func (t *Trace) Descend(i int32) {
	if t == nil || i < 0 {
		return
	}
	t.span(i).Descents++
}

// Scan records n leaf entries examined at span i.
func (t *Trace) Scan(i int32, n int) {
	if t == nil || i < 0 {
		return
	}
	t.span(i).Scanned += int32(n)
}

// Hit records a leaf entry accepted into the result set at span i.
func (t *Trace) Hit(i int32) {
	if t == nil || i < 0 {
		return
	}
	t.span(i).Hits++
}

// stages returns the trace's stage set, allocating it on first use. Traced
// operations already allocate their span slice; one extra small struct per
// traced query keeps the Trace zero value cheap for stage-free traces.
func (t *Trace) stages() *StageSet {
	if t.Stages == nil {
		t.Stages = &StageSet{}
	}
	return t.Stages
}

// AddQueueWait attributes ns nanoseconds of executor queue wait (batch
// submission to worker dequeue) to this operation.
func (t *Trace) AddQueueWait(ns int64) {
	if t == nil || ns <= 0 {
		return
	}
	t.stages().QueueWaitNs += ns
}

// AddPageRead attributes one node fetch (cache hit or physical read +
// decode) taking ns nanoseconds.
func (t *Trace) AddPageRead(ns int64) {
	if t == nil {
		return
	}
	s := t.stages()
	s.PageReadNs += ns
	s.PageReads++
}

// AddWALFsync attributes one commit seal — the WAL append + fsync that
// makes a mutation durable — taking ns nanoseconds.
func (t *Trace) AddWALFsync(ns int64) {
	if t == nil {
		return
	}
	s := t.stages()
	s.WALFsyncNs += ns
	s.WALFsyncs++
}

// AddCompute attributes one leaf-scan distance/filter pass taking ns
// nanoseconds.
func (t *Trace) AddCompute(ns int64) {
	if t == nil {
		return
	}
	s := t.stages()
	s.ComputeNs += ns
	s.ComputeOps++
}

// CountSplit records one node split performed by a mutation.
func (t *Trace) CountSplit() {
	if t == nil {
		return
	}
	t.Splits++
}

// CountReinsert records one orphan reinsertion performed by a delete.
func (t *Trace) CountReinsert() {
	if t == nil {
		return
	}
	t.Reinserts++
}

// MarkRolledBack records that the operation's undo log rolled it back.
func (t *Trace) MarkRolledBack() {
	if t == nil {
		return
	}
	t.RolledBack = true
}

// SetResults records the operation's result count.
func (t *Trace) SetResults(n int) {
	if t == nil {
		return
	}
	t.Results = n
}

// SetError records the operation's error, if any.
func (t *Trace) SetError(err error) {
	if t == nil || err == nil {
		return
	}
	t.Err = err.Error()
}

// FinishSince stamps the trace's elapsed time and delivers it to its sink
// (the ring buffer that StartTrace attached, if any).
func (t *Trace) FinishSince(start time.Time) {
	if t == nil {
		return
	}
	t.Elapsed = time.Since(start)
	if t.sink != nil {
		t.sink(t)
	}
}

// String renders the span tree as an indented outline, one visited node
// per line — the human renderer; json.Marshal of the Trace is the other.
func (t *Trace) String() string {
	if t == nil {
		return "<nil trace>"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %d spans, %d results, %v", t.Op, len(t.Spans), t.Results, t.Elapsed)
	if t.Err != "" {
		fmt.Fprintf(&sb, ", err=%s", t.Err)
	}
	if t.Splits > 0 || t.Reinserts > 0 || t.RolledBack {
		fmt.Fprintf(&sb, ", splits=%d reinserts=%d rolledback=%v", t.Splits, t.Reinserts, t.RolledBack)
	}
	sb.WriteByte('\n')
	if s := t.Stages; s != nil {
		sb.WriteString("  stages:")
		if s.QueueWaitNs > 0 {
			fmt.Fprintf(&sb, " queue_wait=%v", time.Duration(s.QueueWaitNs))
		}
		if s.PageReads > 0 {
			fmt.Fprintf(&sb, " page_reads=%v/%d", time.Duration(s.PageReadNs), s.PageReads)
		}
		if s.WALFsyncs > 0 {
			fmt.Fprintf(&sb, " wal_fsync=%v/%d", time.Duration(s.WALFsyncNs), s.WALFsyncs)
		}
		if s.ComputeOps > 0 {
			fmt.Fprintf(&sb, " compute=%v/%d", time.Duration(s.ComputeNs), s.ComputeOps)
		}
		if other := int64(t.Elapsed) - s.QueueWaitNs - s.PageReadNs - s.WALFsyncNs - s.ComputeNs; other > 0 && t.Elapsed > 0 {
			fmt.Fprintf(&sb, " other=%v", time.Duration(other))
		}
		sb.WriteByte('\n')
	}
	// Children of span i, rebuilt from the flat parent links. Spans are
	// appended in visit order, so children lists stay in visit order too.
	kids := make([][]int32, len(t.Spans))
	var roots []int32
	for i := range t.Spans {
		p := t.Spans[i].Parent
		if p < 0 {
			roots = append(roots, int32(i))
		} else {
			kids[p] = append(kids[p], int32(i))
		}
	}
	var render func(i int32, depth int)
	render = func(i int32, depth int) {
		s := &t.Spans[i]
		sb.WriteString(strings.Repeat("  ", depth))
		kind := "index"
		if s.Leaf {
			kind = "data"
		}
		cache := "miss"
		if s.CacheHit {
			cache = "hit"
		}
		fmt.Fprintf(&sb, "node %d (%s, cache %s)", s.Node, kind, cache)
		if s.Leaf {
			fmt.Fprintf(&sb, " scanned=%d hits=%d", s.Scanned, s.Hits)
		} else {
			fmt.Fprintf(&sb, " kd(L=%d R=%d pruned=%d) els(hits=%d pruned=%d) dist-pruned=%d descents=%d",
				s.KDLeft, s.KDRight, s.KDPruned, s.ELSHits, s.ELSPruned, s.DistPruned, s.Descents)
		}
		sb.WriteByte('\n')
		for _, k := range kids[i] {
			render(k, depth+1)
		}
	}
	for _, r := range roots {
		render(r, 1)
	}
	return sb.String()
}
