package core

import (
	"math/rand"
	"reflect"
	"testing"

	"hybridtree/internal/dist"
	"hybridtree/internal/geom"
	"hybridtree/internal/pagefile"
	"hybridtree/internal/pqueue"
)

// This file pins the iterative, arena-based query path against the original
// recursive implementation, kept below as reference code (refBoxAt &c. are
// verbatim copies of the pre-rewrite traversals, Clone()s and all). On a
// fixed workload the rewrite must return byte-identical result slices in the
// same order AND charge exactly the same number of node accesses to the
// file's Stats — it is a memory-behavior change only.

func (t *Tree) refSearchBox(q geom.Rect) ([]Entry, error) {
	var out []Entry
	err := t.refBoxAt(t.root, t.cfg.Space, q, &out)
	return out, err
}

func (t *Tree) refBoxAt(id pagefile.PageID, br geom.Rect, q geom.Rect, out *[]Entry) error {
	n, err := t.store.get(id)
	if err != nil {
		return err
	}
	if n.leaf {
		for i := range n.rids {
			if p := n.point(i); q.Contains(p) {
				*out = append(*out, Entry{Point: p, RID: n.rids[i]})
			}
		}
		return nil
	}
	if n.kdRoot == kdNone {
		return nil
	}
	type visit struct {
		child pagefile.PageID
		br    geom.Rect
	}
	var visits []visit
	brWalk := br.Clone()
	var walk func(idx int32)
	walk = func(idx int32) {
		k := &n.kd[idx]
		if k.isLeaf() {
			live, ok := t.els.Get(uint32(k.Child), t.cfg.Space)
			if ok && !live.Intersects(q) {
				return
			}
			visits = append(visits, visit{child: k.Child, br: brWalk.Clone()})
			return
		}
		d := int(k.Dim)
		oldHi := brWalk.Hi[d]
		if k.Lsp < oldHi {
			brWalk.Hi[d] = k.Lsp
		}
		if q.Lo[d] <= brWalk.Hi[d] && brWalk.Hi[d] >= brWalk.Lo[d] {
			walk(k.Left)
		}
		brWalk.Hi[d] = oldHi
		oldLo := brWalk.Lo[d]
		if k.Rsp > oldLo {
			brWalk.Lo[d] = k.Rsp
		}
		if q.Hi[d] >= brWalk.Lo[d] && brWalk.Hi[d] >= brWalk.Lo[d] {
			walk(k.Right)
		}
		brWalk.Lo[d] = oldLo
	}
	walk(n.kdRoot)
	for _, v := range visits {
		if err := t.refBoxAt(v.child, v.br, q, out); err != nil {
			return err
		}
	}
	return nil
}

func (t *Tree) refSearchRange(q geom.Point, radius float64, m dist.Metric) ([]Neighbor, error) {
	var out []Neighbor
	err := t.refRangeAt(t.root, t.cfg.Space, q, radius, m, &out)
	return out, err
}

func (t *Tree) refRangeAt(id pagefile.PageID, br geom.Rect, q geom.Point, radius float64, m dist.Metric, out *[]Neighbor) error {
	n, err := t.store.get(id)
	if err != nil {
		return err
	}
	if n.leaf {
		for i := range n.rids {
			p := n.point(i)
			if d := m.Distance(q, p); d <= radius {
				*out = append(*out, Neighbor{Entry: Entry{Point: p, RID: n.rids[i]}, Dist: d})
			}
		}
		return nil
	}
	type visit struct {
		child pagefile.PageID
		br    geom.Rect
	}
	var visits []visit
	brWalk := br.Clone()
	scratch := geom.Rect{Lo: make(geom.Point, t.cfg.Dim), Hi: make(geom.Point, t.cfg.Dim)}
	var walk func(idx int32)
	walk = func(idx int32) {
		k := &n.kd[idx]
		if k.isLeaf() {
			lb := 0.0
			if live, ok := t.els.Get(uint32(k.Child), t.cfg.Space); ok {
				if !intersectInto(&scratch, brWalk, live) {
					return
				}
				lb = m.MinDistRect(q, scratch)
			} else {
				lb = m.MinDistRect(q, brWalk)
			}
			if lb <= radius {
				visits = append(visits, visit{child: k.Child, br: brWalk.Clone()})
			}
			return
		}
		d := int(k.Dim)
		oldHi := brWalk.Hi[d]
		if k.Lsp < oldHi {
			brWalk.Hi[d] = k.Lsp
		}
		if brWalk.Hi[d] >= brWalk.Lo[d] {
			walk(k.Left)
		}
		brWalk.Hi[d] = oldHi
		oldLo := brWalk.Lo[d]
		if k.Rsp > oldLo {
			brWalk.Lo[d] = k.Rsp
		}
		if brWalk.Hi[d] >= brWalk.Lo[d] {
			walk(k.Right)
		}
		brWalk.Lo[d] = oldLo
	}
	if n.kdRoot != kdNone {
		walk(n.kdRoot)
	}
	for _, v := range visits {
		if err := t.refRangeAt(v.child, v.br, q, radius, m, out); err != nil {
			return err
		}
	}
	return nil
}

func (t *Tree) refSearchKNN(q geom.Point, k int, m dist.Metric) ([]Neighbor, error) {
	type frontier struct {
		id pagefile.PageID
		br geom.Rect
	}
	var pq pqueue.Min[frontier]
	best := pqueue.NewKBest[Neighbor](k)

	rootBR := t.cfg.Space
	pq.Push(frontier{id: t.root, br: rootBR}, 0)
	for pq.Len() > 0 {
		f, mindist := pq.Pop()
		if best.Full() && mindist > best.Bound() {
			break
		}
		n, err := t.store.get(f.id)
		if err != nil {
			return nil, err
		}
		if n.leaf {
			for i := range n.rids {
				p := n.point(i)
				d := m.Distance(q, p)
				best.Offer(Neighbor{Entry: Entry{Point: p, RID: n.rids[i]}, Dist: d}, d)
			}
			continue
		}
		brWalk := f.br.Clone()
		scratch := geom.Rect{Lo: make(geom.Point, t.cfg.Dim), Hi: make(geom.Point, t.cfg.Dim)}
		var walk func(idx int32)
		walk = func(idx int32) {
			k2 := &n.kd[idx]
			if k2.isLeaf() {
				var md float64
				if live, ok := t.els.Get(uint32(k2.Child), t.cfg.Space); ok {
					if !intersectInto(&scratch, brWalk, live) {
						return
					}
					md = m.MinDistRect(q, scratch)
				} else {
					md = m.MinDistRect(q, brWalk)
				}
				if !best.Full() || md <= best.Bound() {
					pq.Push(frontier{id: k2.Child, br: brWalk.Clone()}, md)
				}
				return
			}
			d := int(k2.Dim)
			oldHi := brWalk.Hi[d]
			if k2.Lsp < oldHi {
				brWalk.Hi[d] = k2.Lsp
			}
			if brWalk.Hi[d] >= brWalk.Lo[d] {
				walk(k2.Left)
			}
			brWalk.Hi[d] = oldHi
			oldLo := brWalk.Lo[d]
			if k2.Rsp > oldLo {
				brWalk.Lo[d] = k2.Rsp
			}
			if brWalk.Hi[d] >= brWalk.Lo[d] {
				walk(k2.Right)
			}
			brWalk.Lo[d] = oldLo
		}
		if n.kdRoot != kdNone {
			walk(n.kdRoot)
		}
	}
	neighbors, _ := best.Sorted()
	return neighbors, nil
}

func parityTree(t *testing.T, n, dim int, seed int64) (*Tree, []geom.Point, *pagefile.Stats) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	file := pagefile.NewMemFile(pagefile.DefaultPageSize)
	tree, err := New(file, Config{Dim: dim})
	if err != nil {
		t.Fatal(err)
	}
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, dim)
		for d := range p {
			p[d] = rng.Float32()
		}
		pts[i] = p
		if err := tree.Insert(p, RecordID(i)); err != nil {
			t.Fatal(err)
		}
	}
	return tree, pts, file.Stats()
}

// reads runs fn and returns how many node accesses it charged.
func reads(t *testing.T, st *pagefile.Stats, fn func() error) uint64 {
	t.Helper()
	before := st.RandomReads
	if err := fn(); err != nil {
		t.Fatal(err)
	}
	return st.RandomReads - before
}

func TestSearchParityWithSeed(t *testing.T) {
	tree, pts, st := parityTree(t, 6000, 12, 41)
	rng := rand.New(rand.NewSource(42))
	w := make([]float64, 12)
	for i := range w {
		w[i] = 1 + rng.Float64()
	}
	wlp, err := dist.NewWeightedLp(2, w)
	if err != nil {
		t.Fatal(err)
	}
	metrics := []dist.Metric{dist.L1(), dist.L2(), dist.LpMetric{P: 2}, dist.Linf(), wlp}
	c := NewQueryContext()

	for qi := 0; qi < 30; qi++ {
		box := randQueryRect(rng, 12, 0.5)
		var want []Entry
		wantReads := reads(t, st, func() error { var e error; want, e = tree.refSearchBox(box); return e })
		var got []Entry
		gotReads := reads(t, st, func() error { var e error; got, e = tree.SearchBox(box); return e })
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("box query %d: results differ from seed implementation", qi)
		}
		if gotReads != wantReads {
			t.Fatalf("box query %d: %d node reads, seed charged %d", qi, gotReads, wantReads)
		}
		gotCtx, err := tree.SearchBoxCtx(c, box, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotCtx, want) {
			t.Fatalf("box query %d: Ctx variant diverges", qi)
		}

		q := pts[rng.Intn(len(pts))]
		for mi, m := range metrics {
			radius := 0.2 + rng.Float64()*0.6
			var wantR []Neighbor
			wantReads = reads(t, st, func() error { var e error; wantR, e = tree.refSearchRange(q, radius, m); return e })
			var gotR []Neighbor
			gotReads = reads(t, st, func() error { var e error; gotR, e = tree.SearchRange(q, radius, m); return e })
			if !reflect.DeepEqual(gotR, wantR) {
				t.Fatalf("range query %d metric %d: results differ from seed implementation", qi, mi)
			}
			if gotReads != wantReads {
				t.Fatalf("range query %d metric %d: %d node reads, seed charged %d", qi, mi, gotReads, wantReads)
			}

			k := 1 + rng.Intn(20)
			var wantK []Neighbor
			wantReads = reads(t, st, func() error { var e error; wantK, e = tree.refSearchKNN(q, k, m); return e })
			var gotK []Neighbor
			gotReads = reads(t, st, func() error { var e error; gotK, e = tree.SearchKNN(q, k, m); return e })
			if !reflect.DeepEqual(gotK, wantK) {
				t.Fatalf("knn query %d metric %d k=%d: results differ from seed implementation", qi, mi, k)
			}
			if gotReads != wantReads {
				t.Fatalf("knn query %d metric %d k=%d: %d node reads, seed charged %d", qi, mi, k, gotReads, wantReads)
			}
			gotKCtx, err := tree.SearchKNNCtx(c, q, k, m, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gotKCtx, wantK) {
				t.Fatalf("knn query %d metric %d k=%d: Ctx variant diverges", qi, mi, k)
			}
		}
	}
}

// TestSearchBoxFuncParity checks the streaming traversal emits the same
// entries in the same order as SearchBox.
func TestSearchBoxFuncParity(t *testing.T) {
	tree, _, _ := parityTree(t, 3000, 8, 43)
	rng := rand.New(rand.NewSource(44))
	for qi := 0; qi < 20; qi++ {
		box := randQueryRect(rng, 8, 0.6)
		want, err := tree.SearchBox(box)
		if err != nil {
			t.Fatal(err)
		}
		var got []Entry
		if err := tree.SearchBoxFunc(box, func(e Entry) bool {
			got = append(got, e)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("box func query %d: stream differs from SearchBox", qi)
		}
	}
}
