package core

import (
	"fmt"

	"hybridtree/internal/dist"
	"hybridtree/internal/geom"
)

// SearchBoxFunc streams every entry inside q to fn without materializing a
// result slice; fn returning false stops the search early (useful for
// EXISTS-style predicates and LIMIT queries). The Entry's Point is shared
// with the node cache and must be cloned if retained. Entries arrive in the
// same depth-first order SearchBox returns them.
func (t *Tree) SearchBoxFunc(q geom.Rect, fn func(Entry) bool) error {
	if q.Dim() != t.cfg.Dim {
		return fmt.Errorf("core: query has dim %d, tree expects %d", q.Dim(), t.cfg.Dim)
	}
	c := t.getCtx()
	defer t.putCtx(c)
	qc := &c.qc
	qc.acquire(t.cfg.Dim)
	defer qc.release()
	t.pinCtx(qc)
	tr, start := t.beginQuery(qc, opBox)
	accepted := 0

	pending := append(qc.pending, visitRef{child: qc.ver.root, slot: qc.arena.put(t.cfg.Space), span: -1})
	for len(pending) > 0 {
		v := pending[len(pending)-1]
		pending = pending[:len(pending)-1]
		qc.arena.copyOut(v.slot, qc.walk)
		qc.arena.release(v.slot)
		n, hit, err := t.store.getq(v.child, qc.ver.epoch)
		if err != nil {
			qc.pending = pending[:0]
			t.finishQuery(qc, opBox, start, accepted, err)
			return err
		}
		span := tr.Visit(v.span, uint32(v.child), n.leaf, hit)
		if n.leaf {
			qc.tally.scanned += n.count()
			tr.Scan(span, n.count())
			qc.hits = dist.FilterBoxSlab(q.Lo, q.Hi, n.vals, n.dim, qc.hits[:0])
			for _, i := range qc.hits {
				tr.Hit(span)
				accepted++
				if !fn(Entry{Point: n.point(int(i)), RID: n.rids[i]}) {
					qc.pending = pending[:0]
					t.finishQuery(qc, opBox, start, accepted, nil)
					return nil
				}
			}
			continue
		}
		if n.kdRoot == kdNone {
			continue
		}
		mark := len(pending)
		pending = t.kdWalkBox(qc, n, q, span, pending)
		reverseVisits(pending[mark:])
	}
	qc.pending = pending[:0]
	t.finishQuery(qc, opBox, start, accepted, nil)
	return nil
}

// CountBox returns the number of entries inside q without materializing
// them.
func (t *Tree) CountBox(q geom.Rect) (int, error) {
	count := 0
	err := t.SearchBoxFunc(q, func(Entry) bool {
		count++
		return true
	})
	return count, err
}

// ContainsAny reports whether at least one entry lies inside q, stopping at
// the first hit.
func (t *Tree) ContainsAny(q geom.Rect) (bool, error) {
	found := false
	err := t.SearchBoxFunc(q, func(Entry) bool {
		found = true
		return false
	})
	return found, err
}

// CountRange returns the number of entries within radius of q under metric
// m without materializing them.
func (t *Tree) CountRange(q geom.Point, radius float64, m dist.Metric) (int, error) {
	// Range search already streams internally; reuse it via a thin
	// collector to keep one traversal implementation.
	ns, err := t.SearchRange(q, radius, m)
	if err != nil {
		return 0, err
	}
	return len(ns), nil
}
