// Package els implements the hybrid tree's Encoded Live Space (ELS)
// optimization (Section 3.4, Figure 4 of the paper). SP-based structures
// index dead space — regions of their partitions that contain no data — and
// pay unnecessary disk accesses for it. Storing exact live-space bounding
// rectangles would make node size dimension-dependent (turning the structure
// back into a DP technique), so the live rectangle is instead *encoded*
// relative to the kd-tree-defined region on a 2^bits grid per dimension,
// costing 2·dim·bits bits per node. The encoding is conservative: the
// decoded rectangle always contains the true live rectangle, so pruning with
// it is safe.
package els

import (
	"fmt"
	"math"

	"hybridtree/internal/geom"
)

// Encoded is a bit-packed live-space rectangle: for each dimension, a
// lo-cell index (rounded down) and a hi-cell index (rounded up), each using
// the table's configured number of bits.
type Encoded []byte

// chunkBits sets the chunk granularity of the persistent table: 64 entries
// per chunk keeps the copy-on-write unit small (a mutation clones at most a
// few hundred bytes plus the decoded-rectangle block) while a snapshot is
// just a shared slice of chunk pointers.
const (
	chunkBits = 6
	chunkSize = 1 << chunkBits
	chunkMask = chunkSize - 1
)

// chunk holds 64 consecutive node ids' encodings plus their eagerly decoded
// rectangles in one flat float32 block (entry i's rectangle occupies
// dec[i·2·dim : (i+1)·2·dim], lo then hi). Once sealed by Publish a chunk is
// immutable; mutations replace it wholesale via copy-on-write.
type chunk struct {
	sealed  bool
	present [chunkSize]bool
	enc     [chunkSize]Encoded
	dec     []float32
}

// Table holds the encoded live rectangles of a tree's nodes, keyed by an
// opaque node identifier (page id). The paper stores this side information
// in memory — for an 8K page, 4-bit precision and 64 dimensions it is under
// 1% of the database size — and so do we. MemoryBytes reports the honest
// footprint so the harness can verify that claim.
//
// The table is the writer's working copy: mutations require the external
// serialization the concurrency layer already provides for writers. Readers
// never touch the Table — they use the immutable Snap the writer obtains
// from Publish at commit time, which is safe for any number of concurrent
// goroutines with zero locking.
type Table struct {
	bits int
	dim  int
	n    int
	// chunks is indexed by id>>chunkBits. When sealedSlice is true the slice
	// itself is shared with a published Snap and must be cloned before any
	// element is replaced.
	chunks      []*chunk
	sealedSlice bool
}

// NewTable creates an ELS table with the given precision in bits per
// boundary (0 disables encoding: Decode returns the outer rectangle
// unchanged). The paper sweeps 0–16 bits in Figure 5(c); 4 is its sweet
// spot.
func NewTable(bits int) *Table {
	if bits < 0 || bits > 16 {
		panic(fmt.Sprintf("els: bits per boundary must be in [0,16], got %d", bits))
	}
	return &Table{bits: bits}
}

// Bits returns the configured precision.
func (t *Table) Bits() int { return t.bits }

// Enabled reports whether encoding is active (bits > 0).
func (t *Table) Enabled() bool { return t.bits > 0 }

// MemoryBytes returns the total size of all stored encodings.
func (t *Table) MemoryBytes() int {
	n := 0
	for _, c := range t.chunks {
		if c == nil {
			continue
		}
		for i := range c.enc {
			if c.present[i] {
				n += len(c.enc[i])
			}
		}
	}
	return n
}

func (t *Table) ensureDim(dim int) {
	if t.dim == 0 {
		t.dim = dim
	}
}

// mutable returns a chunk safe to mutate in place, cloning any state shared
// with a published snapshot first.
func (t *Table) mutable(ci int) *chunk {
	if t.sealedSlice {
		t.chunks = append([]*chunk(nil), t.chunks...)
		t.sealedSlice = false
	}
	for ci >= len(t.chunks) {
		t.chunks = append(t.chunks, nil)
	}
	c := t.chunks[ci]
	if c == nil {
		c = &chunk{dec: make([]float32, chunkSize*2*t.dim)}
		t.chunks[ci] = c
	} else if c.sealed {
		nc := &chunk{present: c.present, enc: c.enc}
		nc.dec = append([]float32(nil), c.dec...)
		t.chunks[ci] = nc
		c = nc
	}
	return c
}

// install stores enc (and its decoded form, relative to outer) for id.
func (t *Table) install(id uint32, outer geom.Rect, e Encoded) {
	t.ensureDim(outer.Dim())
	c := t.mutable(int(id >> chunkBits))
	idx := int(id & chunkMask)
	if !c.present[idx] {
		c.present[idx] = true
		t.n++
	}
	c.enc[idx] = e
	d := Decode(outer, e, t.bits)
	off := idx * 2 * t.dim
	copy(c.dec[off:off+t.dim], d.Lo)
	copy(c.dec[off+t.dim:off+2*t.dim], d.Hi)
}

// Set encodes live relative to outer and stores it for id. live must be
// contained in outer (up to float rounding; coordinates are clamped).
func (t *Table) Set(id uint32, outer, live geom.Rect) {
	if !t.Enabled() {
		return
	}
	t.install(id, outer, Encode(outer, live, t.bits))
}

// decAt returns the stored decoded rectangle for id, aliasing the chunk's
// flat block. Callers must not mutate it.
func decAt(chunks []*chunk, dim int, id uint32) (geom.Rect, bool) {
	ci := int(id >> chunkBits)
	if ci >= len(chunks) {
		return geom.Rect{}, false
	}
	c := chunks[ci]
	if c == nil {
		return geom.Rect{}, false
	}
	idx := int(id & chunkMask)
	if !c.present[idx] {
		return geom.Rect{}, false
	}
	off := idx * 2 * dim
	return geom.Rect{Lo: c.dec[off : off+dim], Hi: c.dec[off+dim : off+2*dim]}, true
}

// Get returns the decoded live rectangle for id, or outer itself when no
// encoding is stored (or encoding is disabled). The second return reports
// whether an encoding was present. The returned rectangle aliases the
// table's decoded block — callers must not mutate it.
func (t *Table) Get(id uint32, outer geom.Rect) (geom.Rect, bool) {
	if !t.Enabled() {
		return outer, false
	}
	if r, ok := decAt(t.chunks, t.dim, id); ok {
		return r, true
	}
	return outer, false
}

// EnlargeToInclude grows id's stored live rectangle to include p (used on
// insertion). If nothing is stored yet, the live rectangle becomes the
// degenerate rectangle at p.
func (t *Table) EnlargeToInclude(id uint32, outer geom.Rect, p geom.Point) {
	if !t.Enabled() {
		return
	}
	t.ensureDim(outer.Dim())
	if live, ok := decAt(t.chunks, t.dim, id); ok {
		if live.Contains(p) {
			return // common case: no re-encode, no copy-on-write
		}
		grown := live.Clone()
		grown.Enlarge(p)
		t.install(id, outer, Encode(outer, grown, t.bits))
		return
	}
	live := geom.Rect{Lo: p.Clone(), Hi: p.Clone()}
	t.install(id, outer, Encode(outer, live, t.bits))
}

// EnlargeExisting grows id's stored live rectangle to include p only when
// an encoding is already stored; absent entries stay absent. The insert
// descent uses this for the root: a fresh tree never stores a root entry,
// but a rebuild (recovery) or snapshot restore does, and that entry must
// track later insertions — while installing a fresh degenerate rectangle
// here would wrongly claim the whole live space is {p}.
func (t *Table) EnlargeExisting(id uint32, outer geom.Rect, p geom.Point) {
	if !t.Enabled() {
		return
	}
	t.ensureDim(outer.Dim())
	live, ok := decAt(t.chunks, t.dim, id)
	if !ok || live.Contains(p) {
		return
	}
	grown := live.Clone()
	grown.Enlarge(p)
	t.install(id, outer, Encode(outer, grown, t.bits))
}

// Encoded returns the raw stored encoding for id, if any. The returned
// slice is shared with the table — callers must not mutate it. Set always
// installs a freshly allocated encoding, so a captured slice stays intact.
func (t *Table) Encoded(id uint32) (Encoded, bool) {
	ci := int(id >> chunkBits)
	if ci >= len(t.chunks) || t.chunks[ci] == nil {
		return nil, false
	}
	idx := int(id & chunkMask)
	if !t.chunks[ci].present[idx] {
		return nil, false
	}
	return t.chunks[ci].enc[idx], true
}

// Delete removes id's encoding (when its node is freed).
func (t *Table) Delete(id uint32) {
	if !t.Enabled() {
		return
	}
	ci := int(id >> chunkBits)
	if ci >= len(t.chunks) || t.chunks[ci] == nil {
		return
	}
	idx := int(id & chunkMask)
	if !t.chunks[ci].present[idx] {
		return
	}
	c := t.mutable(ci)
	c.present[idx] = false
	c.enc[idx] = nil
	t.n--
}

// Len returns the number of stored encodings.
func (t *Table) Len() int { return t.n }

// Snapshot returns every stored (id, encoding) pair in ascending id order,
// for persistence. The encodings are shared, not copied.
func (t *Table) Snapshot() (ids []uint32, encs []Encoded) {
	ids = make([]uint32, 0, t.n)
	encs = make([]Encoded, 0, t.n)
	for ci, c := range t.chunks {
		if c == nil {
			continue
		}
		for i := 0; i < chunkSize; i++ {
			if c.present[i] {
				ids = append(ids, uint32(ci<<chunkBits|i))
				encs = append(encs, c.enc[i])
			}
		}
	}
	return ids, encs
}

// Restore installs an encoding captured by Snapshot or Encoded, decoding it
// eagerly relative to outer (the same outer rectangle the original Set
// used; the tree encodes every live rectangle relative to the data space).
func (t *Table) Restore(id uint32, enc Encoded, outer geom.Rect) {
	if !t.Enabled() {
		return
	}
	t.install(id, outer, enc)
}

// Snap is an immutable point-in-time view of a Table, safe for concurrent
// lock-free reads. A Snap shares chunk storage with the table and with
// other snapshots; the copy-on-write discipline in Table guarantees no
// chunk reachable from a Snap is ever mutated.
type Snap struct {
	bits   int
	dim    int
	n      int
	chunks []*chunk
}

// Publish seals the table's current state and returns it as an immutable
// snapshot. The writer calls this once per committed mutation; subsequent
// table mutations copy-on-write any chunk (and the chunk slice) the
// snapshot references.
func (t *Table) Publish() *Snap {
	for _, c := range t.chunks {
		if c != nil {
			c.sealed = true
		}
	}
	t.sealedSlice = true
	return &Snap{bits: t.bits, dim: t.dim, n: t.n, chunks: t.chunks}
}

// ResetTo rewinds the table to a previously published snapshot, discarding
// every mutation since. Rollback uses this instead of replaying undo
// pre-images.
func (t *Table) ResetTo(s *Snap) {
	t.bits = s.bits
	t.dim = s.dim
	t.n = s.n
	t.chunks = s.chunks
	t.sealedSlice = true
}

// Enabled reports whether encoding is active in this snapshot.
func (s *Snap) Enabled() bool { return s.bits > 0 }

// Len returns the number of stored encodings in the snapshot.
func (s *Snap) Len() int { return s.n }

// MemoryBytes returns the total size of all encodings stored in the
// snapshot.
func (s *Snap) MemoryBytes() int {
	n := 0
	for _, c := range s.chunks {
		if c == nil {
			continue
		}
		for i := range c.enc {
			if c.present[i] {
				n += len(c.enc[i])
			}
		}
	}
	return n
}

// Get is Table.Get against the snapshot: zero locks, zero allocations. The
// returned rectangle aliases the snapshot's decoded block — callers must
// not mutate it.
func (s *Snap) Get(id uint32, outer geom.Rect) (geom.Rect, bool) {
	if s.bits == 0 {
		return outer, false
	}
	if r, ok := decAt(s.chunks, s.dim, id); ok {
		return r, true
	}
	return outer, false
}

// Encode quantizes live relative to outer using the given bits per boundary.
// Lo boundaries round down and hi boundaries round up, so the decoded
// rectangle always contains live.
func Encode(outer, live geom.Rect, bits int) Encoded {
	dim := outer.Dim()
	cells := float64(int(1) << bits)
	w := newBitWriter(2 * dim * bits)
	for d := 0; d < dim; d++ {
		ext := outer.Extent(d)
		var loCell, hiCell uint32
		if ext <= 0 {
			// Degenerate outer extent: the whole cell range is one point.
			loCell, hiCell = 0, uint32(cells)-1
		} else {
			loFrac := (float64(live.Lo[d]) - float64(outer.Lo[d])) / ext
			hiFrac := (float64(live.Hi[d]) - float64(outer.Lo[d])) / ext
			loCell = clampCell(math.Floor(loFrac*cells), cells)
			hiCell = clampCell(math.Ceil(hiFrac*cells)-1, cells)
			if hiCell < loCell {
				hiCell = loCell
			}
		}
		w.write(loCell, bits)
		w.write(hiCell, bits)
	}
	return w.bytes()
}

// Decode expands an encoding back to a rectangle in outer's coordinates.
func Decode(outer geom.Rect, e Encoded, bits int) geom.Rect {
	dim := outer.Dim()
	cells := float64(int(1) << bits)
	r := newBitReader(e)
	out := geom.Rect{Lo: make(geom.Point, dim), Hi: make(geom.Point, dim)}
	for d := 0; d < dim; d++ {
		loCell := r.read(bits)
		hiCell := r.read(bits)
		ext := outer.Extent(d)
		out.Lo[d] = outer.Lo[d] + float32(float64(loCell)/cells*ext)
		out.Hi[d] = outer.Lo[d] + float32(float64(hiCell+1)/cells*ext)
		if out.Hi[d] > outer.Hi[d] {
			out.Hi[d] = outer.Hi[d]
		}
		if out.Lo[d] < outer.Lo[d] {
			out.Lo[d] = outer.Lo[d]
		}
	}
	return out
}

func clampCell(v, cells float64) uint32 {
	if v < 0 {
		return 0
	}
	if v > cells-1 {
		return uint32(cells) - 1
	}
	return uint32(v)
}

// bitWriter packs fixed-width unsigned values MSB-first.
type bitWriter struct {
	buf []byte
	n   int // bits written
}

func newBitWriter(totalBits int) *bitWriter {
	return &bitWriter{buf: make([]byte, (totalBits+7)/8)}
}

func (w *bitWriter) write(v uint32, bits int) {
	for i := bits - 1; i >= 0; i-- {
		if v&(1<<uint(i)) != 0 {
			w.buf[w.n/8] |= 1 << uint(7-w.n%8)
		}
		w.n++
	}
}

func (w *bitWriter) bytes() []byte { return w.buf }

type bitReader struct {
	buf []byte
	n   int
}

func newBitReader(buf []byte) *bitReader { return &bitReader{buf: buf} }

func (r *bitReader) read(bits int) uint32 {
	var v uint32
	for i := 0; i < bits; i++ {
		v <<= 1
		if r.buf[r.n/8]&(1<<uint(7-r.n%8)) != 0 {
			v |= 1
		}
		r.n++
	}
	return v
}
