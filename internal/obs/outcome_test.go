package obs

import "testing"

func TestOutcomesRecord(t *testing.T) {
	r := NewRegistry()
	o := NewOutcomes(r, "test_outcomes_total")
	o.Record(OutcomeOK)
	o.Record(OutcomeOK)
	o.Record(OutcomeDegraded)
	o.Record(OutcomeKind(99)) // out of range folds into error

	if got := o.Get(OutcomeOK).Value(); got != 2 {
		t.Fatalf("ok = %d, want 2", got)
	}
	if got := o.Get(OutcomeDegraded).Value(); got != 1 {
		t.Fatalf("degraded = %d, want 1", got)
	}
	if got := o.Get(OutcomeError).Value(); got != 1 {
		t.Fatalf("error = %d, want 1", got)
	}
	if got := r.Counter(`test_outcomes_total{outcome="degraded"}`).Value(); got != 1 {
		t.Fatalf("registry lookup = %d, want 1", got)
	}
}

func TestOutcomeKindString(t *testing.T) {
	want := []string{"ok", "cancelled", "timeout", "shed", "degraded", "error"}
	if len(want) != NumOutcomes {
		t.Fatalf("NumOutcomes = %d, want %d", NumOutcomes, len(want))
	}
	for k, name := range want {
		if got := OutcomeKind(k).String(); got != name {
			t.Fatalf("OutcomeKind(%d).String() = %q, want %q", k, got, name)
		}
	}
	if got := OutcomeKind(-1).String(); got != "unknown" {
		t.Fatalf("OutcomeKind(-1).String() = %q, want unknown", got)
	}
}
