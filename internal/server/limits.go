package server

import (
	"net"
	"sync"

	"hybridtree/internal/obs"
)

// limitListener caps concurrently open accepted connections at n: Accept
// blocks once n connections are live, so excess clients wait in the
// kernel's accept backlog (and eventually time out there) instead of each
// costing this process a goroutine, a file descriptor and a read buffer.
// This is the outermost rung of the overload ladder — cheaper than
// admission control because rejected work never even parses HTTP.
//
// The semaphore is released when the connection closes, whichever side
// closes it; Close is idempotent per connection.
func limitListener(ln net.Listener, n int, held *obs.Gauge) net.Listener {
	return &limitedListener{Listener: ln, sem: make(chan struct{}, n), held: held}
}

type limitedListener struct {
	net.Listener
	sem  chan struct{}
	held *obs.Gauge
}

func (l *limitedListener) Accept() (net.Conn, error) {
	l.sem <- struct{}{}
	c, err := l.Listener.Accept()
	if err != nil {
		<-l.sem
		return nil, err
	}
	l.held.Add(1)
	return &limitedConn{Conn: c, release: l.release}, nil
}

func (l *limitedListener) release() {
	l.held.Add(-1)
	<-l.sem
}

type limitedConn struct {
	net.Conn
	once    sync.Once
	release func()
}

func (c *limitedConn) Close() error {
	err := c.Conn.Close()
	c.once.Do(c.release)
	return err
}
