// Package nodestore provides a generic decoded-node cache over a page file,
// shared by the baseline access methods (SR-tree, hB-tree, KDB-tree). Like
// the hybrid tree's store, it charges one logical random read per Get even
// on a cache hit: the experiments count cold disk accesses, and caching is
// only a construction-speed convenience that must not distort measurements.
//
// Get is lock-free: each shard publishes its map through an atomic pointer
// and mutators replace it copy-on-write, so readers never contend with each
// other or with the writer. Put, Alloc and Free still need the exclusive
// writer serialization a concurrency layer provides.
package nodestore

import (
	"sync"
	"sync/atomic"

	"hybridtree/internal/obs"
	"hybridtree/internal/pagefile"
)

// Codec serializes nodes of type N to and from page bytes.
type Codec[N any] interface {
	Encode(n N, buf []byte) (int, error)
	Decode(id pagefile.PageID, buf []byte) (N, error)
}

// shards is the number of independently-published cache segments.
const shards = 16

// shard is one cache segment: readers load m with a single atomic pointer
// load; mutators serialize on mu and install a fresh copy of the map, never
// mutating one a reader may hold.
type shard[N any] struct {
	mu sync.Mutex
	m  atomic.Pointer[map[pagefile.PageID]N]
}

// mutate replaces the shard's map with fn applied to a private copy.
func (sh *shard[N]) mutate(fn func(m map[pagefile.PageID]N)) {
	sh.mu.Lock()
	old := *sh.m.Load()
	next := make(map[pagefile.PageID]N, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	fn(next)
	sh.m.Store(&next)
	sh.mu.Unlock()
}

// Store is a write-through decoded-node cache.
type Store[N any] struct {
	file   pagefile.File
	codec  Codec[N]
	shards [shards]shard[N]
	bufs   sync.Pool // *[]byte scratch pages
	// obs holds the shared node-read/cache-hit counters for the owning
	// access method (nil = no obs accounting); see SetObsMethod.
	obs atomic.Pointer[obsCounters]
}

// obsCounters bundles the unified per-method counters every access method
// reports reads through (obs.IndexCounters — the same code path the hybrid
// tree's own store uses, so cross-method numbers stay comparable).
type obsCounters struct {
	reads, hits, misses *obs.Counter
}

// SetObsMethod attaches the store to the unified per-method obs counters
// under the given method label (the index's Name()).
func (s *Store[N]) SetObsMethod(method string) {
	reads, hits, misses := obs.IndexCounters(obs.Default(), method)
	s.obs.Store(&obsCounters{reads: reads, hits: hits, misses: misses})
}

// PauseObs detaches the obs counters and returns the previous attachment
// for ResumeObs, so structural audit walks don't inflate read accounting
// (mirroring the pagefile.Stats save/restore those walks already do).
func (s *Store[N]) PauseObs() any {
	o := s.obs.Load()
	s.obs.Store(nil)
	return o
}

// ResumeObs restores an attachment returned by PauseObs.
func (s *Store[N]) ResumeObs(o any) {
	if o == nil {
		s.obs.Store(nil)
		return
	}
	s.obs.Store(o.(*obsCounters))
}

// New creates a store over file using codec.
func New[N any](file pagefile.File, codec Codec[N]) *Store[N] {
	s := &Store[N]{file: file, codec: codec}
	for i := range s.shards {
		m := make(map[pagefile.PageID]N)
		s.shards[i].m.Store(&m)
	}
	pageSize := file.PageSize()
	s.bufs.New = func() any {
		b := make([]byte, pageSize)
		return &b
	}
	return s
}

func (s *Store[N]) shard(id pagefile.PageID) *shard[N] {
	return &s.shards[uint(id)%shards]
}

// Get returns the decoded node, counting one logical random read. Safe for
// concurrent callers; a cache hit costs one atomic load and no locks.
func (s *Store[N]) Get(id pagefile.PageID) (N, error) {
	sh := s.shard(id)
	if n, ok := (*sh.m.Load())[id]; ok {
		s.file.Stats().AddRandomReads(1)
		if o := s.obs.Load(); o != nil {
			o.reads.Inc()
			o.hits.Inc()
		}
		return n, nil
	}
	var zero N
	bufp := s.bufs.Get().(*[]byte)
	if err := s.file.ReadPage(id, *bufp); err != nil {
		s.bufs.Put(bufp)
		return zero, err
	}
	n, err := s.codec.Decode(id, *bufp)
	s.bufs.Put(bufp)
	if err != nil {
		return zero, err
	}
	if o := s.obs.Load(); o != nil {
		o.reads.Inc()
		o.misses.Inc()
	}
	sh.mutate(func(m map[pagefile.PageID]N) {
		if cached, ok := m[id]; ok {
			n = cached // first decode wins; writers see one canonical instance
		} else {
			m[id] = n
		}
	})
	return n, nil
}

// Alloc reserves a fresh page id.
func (s *Store[N]) Alloc() (pagefile.PageID, error) {
	return s.file.Allocate()
}

// Put writes the node through to its page and caches it.
func (s *Store[N]) Put(id pagefile.PageID, n N) error {
	bufp := s.bufs.Get().(*[]byte)
	size, err := s.codec.Encode(n, *bufp)
	if err == nil {
		err = s.file.WritePage(id, (*bufp)[:size])
	}
	s.bufs.Put(bufp)
	if err != nil {
		return err
	}
	s.shard(id).mutate(func(m map[pagefile.PageID]N) { m[id] = n })
	return nil
}

// Free releases the node's page.
func (s *Store[N]) Free(id pagefile.PageID) error {
	s.shard(id).mutate(func(m map[pagefile.PageID]N) { delete(m, id) })
	return s.file.Free(id)
}

// DropCache empties the decoded cache, forcing decodes on subsequent Gets.
func (s *Store[N]) DropCache() {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		m := make(map[pagefile.PageID]N)
		sh.m.Store(&m)
		sh.mu.Unlock()
	}
}
