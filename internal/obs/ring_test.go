package obs

import (
	"sync"
	"testing"
	"time"
)

// TestRingConcurrentPushSnapshot stress-tests concurrent trace delivery
// against snapshotting — run under -race in CI, where the interesting
// assertions are the detector's.
func TestRingConcurrentPushSnapshot(t *testing.T) {
	r := NewRing(32)
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < 2000; i++ {
				tr := r.StartTrace("op")
				tr.Visit(-1, uint32(i), true, true)
				tr.FinishSince(time.Now())
			}
		}()
	}

	stop := make(chan struct{})
	snapDone := make(chan struct{})
	go func() {
		defer close(snapDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := r.Snapshot()
			if len(snap) > r.Cap() {
				t.Errorf("snapshot len %d > cap %d", len(snap), r.Cap())
				return
			}
			for _, tr := range snap {
				if tr == nil {
					t.Error("nil trace in snapshot")
					return
				}
				_ = tr.Op
			}
		}
	}()

	writers.Wait()
	close(stop)
	select {
	case <-snapDone:
	case <-time.After(10 * time.Second):
		t.Fatal("snapshotter did not stop")
	}
	if r.Total() != 8000 {
		t.Fatalf("total = %d, want 8000", r.Total())
	}
}
