package dist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hybridtree/internal/geom"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestKnownDistances(t *testing.T) {
	a := geom.Point{0, 0}
	b := geom.Point{3, 4}
	cases := []struct {
		m    Metric
		want float64
	}{
		{L1(), 7},
		{L2(), 5},
		{Linf(), 4},
		{LpMetric{P: 2}, 5},
		{LpMetric{P: 1}, 7},
	}
	for _, c := range cases {
		if got := c.m.Distance(a, b); !almostEq(got, c.want) {
			t.Errorf("%s(a,b) = %g, want %g", c.m.Name(), got, c.want)
		}
	}
}

func TestWeightedLp(t *testing.T) {
	m, err := NewWeightedLp(1, []float64{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	// Second dimension weight zero: differences there are ignored.
	got := m.Distance(geom.Point{0, 0}, geom.Point{1, 100})
	if !almostEq(got, 2) {
		t.Fatalf("weighted distance = %g, want 2", got)
	}
	if _, err := NewWeightedLp(0.5, []float64{1}); err == nil {
		t.Fatal("p<1 should be rejected")
	}
	if _, err := NewWeightedLp(2, []float64{-1}); err == nil {
		t.Fatal("negative weight should be rejected")
	}
	if _, err := NewWeightedLp(2, []float64{math.NaN()}); err == nil {
		t.Fatal("NaN weight should be rejected")
	}
}

func TestMinDistRectInsideIsZero(t *testing.T) {
	r := geom.NewRect(geom.Point{0, 0}, geom.Point{1, 1})
	q := geom.Point{0.5, 0.5}
	for _, m := range []Metric{L1(), L2(), Linf(), LpMetric{P: 3}} {
		if got := m.MinDistRect(q, r); got != 0 {
			t.Errorf("%s MinDistRect inside = %g, want 0", m.Name(), got)
		}
	}
}

func TestMinDistRectKnown(t *testing.T) {
	r := geom.NewRect(geom.Point{0, 0}, geom.Point{1, 1})
	q := geom.Point{4, 5}
	if got := L1().MinDistRect(q, r); !almostEq(got, 7) {
		t.Fatalf("L1 mindist = %g, want 7", got)
	}
	if got := L2().MinDistRect(q, r); !almostEq(got, 5) {
		t.Fatalf("L2 mindist = %g, want 5", got)
	}
	if got := Linf().MinDistRect(q, r); !almostEq(got, 4) {
		t.Fatalf("Linf mindist = %g, want 4", got)
	}
}

func randPoint(rng *rand.Rand, dim int) geom.Point {
	p := make(geom.Point, dim)
	for d := range p {
		p[d] = rng.Float32()
	}
	return p
}

func metrics() []Metric {
	w8 := make([]float64, 8)
	for i := range w8 {
		w8[i] = float64(i%3) + 0.5
	}
	wm, _ := NewWeightedLp(2, w8)
	return []Metric{L1(), L2(), Linf(), LpMetric{P: 3}, wm}
}

// Metric axioms: non-negativity, identity, symmetry, triangle inequality.
func TestMetricAxioms(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const dim = 8
		a, b, c := randPoint(rng, dim), randPoint(rng, dim), randPoint(rng, dim)
		for _, m := range metrics() {
			dab, dba := m.Distance(a, b), m.Distance(b, a)
			if dab < 0 || !almostEq(dab, dba) {
				return false
			}
			if m.Distance(a, a) > 1e-9 {
				return false
			}
			if m.Distance(a, c) > dab+m.Distance(b, c)+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// MINDIST contract: for any rectangle r and any point x inside it,
// MinDistRect(q, r) <= Distance(q, x).
func TestMinDistLowerBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const dim = 6
		lo, hi := randPoint(rng, dim), randPoint(rng, dim)
		for d := range lo {
			if lo[d] > hi[d] {
				lo[d], hi[d] = hi[d], lo[d]
			}
		}
		r := geom.Rect{Lo: lo, Hi: hi}
		q := make(geom.Point, dim)
		for d := range q {
			q[d] = rng.Float32()*3 - 1
		}
		// Random point inside r.
		x := make(geom.Point, dim)
		for d := range x {
			x[d] = lo[d] + rng.Float32()*(hi[d]-lo[d])
		}
		for _, m := range metrics() {
			if m.MinDistRect(q, r) > m.Distance(q, x)+1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// L1 >= L2 >= Linf pointwise — relied on by SR-tree sphere pruning under L1.
func TestNormOrdering(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randPoint(rng, 10), randPoint(rng, 10)
		d1, d2, di := L1().Distance(a, b), L2().Distance(a, b), Linf().Distance(a, b)
		return d1 >= d2-1e-9 && d2 >= di-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNames(t *testing.T) {
	if L1().Name() != "L1" || L2().Name() != "L2" || Linf().Name() != "Linf" {
		t.Fatal("unexpected metric names")
	}
	wm, _ := NewWeightedLp(2, []float64{1})
	if wm.Name() != "wL2" {
		t.Fatalf("weighted name = %q", wm.Name())
	}
}
